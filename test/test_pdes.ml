(* Conservative time-window PDES: sharded runs must be byte-identical to
   the serial fallback.

   The property at the heart of the tentpole: for random small fabrics,
   schemes, loads and seeds, the canonical FCT dump of a run at --shards
   n (n in {2, 4}) equals the dump at --shards 1 (the serial fallback
   with PDES stats conventions).  Also covers the partition-time window
   validation and the legacy/serial-fallback equivalence of record
   *contents*. *)

open Experiments

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let qc = QCheck_alcotest.to_alcotest

let params ~leaves ~hosts_per_leaf ~asymmetric ~seed =
  {
    Scenario.default_params with
    Scenario.leaves;
    spines = 2;
    hosts_per_leaf;
    asymmetric;
    seed;
    (* keep per-run cost small: the property runs many fabrics *)
    size_scale = 0.1;
  }

let run_once ~shards ~scheme ~params ~load ~jobs_per_conn =
  let scn = Scenario.build ~shards ~scheme params in
  let rng = Scenario.rng scn in
  let servers = Scenario.servers scn in
  let conns =
    Array.mapi
      (fun i client ->
        Scenario.connect scn ~src:client
          ~dst:servers.(i mod Array.length servers))
      (Scenario.clients scn)
  in
  let cfg =
    {
      Workload.Websearch.load;
      bisection_bps = Scenario.bisection_bps scn;
      jobs_per_conn;
      size_dist = Scenario.size_dist scn;
      start_at = Scenario.warmup scn;
    }
  in
  let fct = Scenario.run_websearch scn ~rng ~conns cfg in
  Scenario.quiesce scn;
  Workload.Fct_stats.canonical_dump fct

(* ------------------- shard(n) = serial property -------------------- *)

let schemes = [| Scenario.S_ecmp; S_clove_ecn; S_letflow; S_conga |]

let prop_sharded_equals_serial =
  QCheck.Test.make ~name:"shard(n) FCT digest = serial, random fabrics"
    ~count:8
    QCheck.(
      quad (int_range 2 4 (* leaves *)) (int_range 2 3 (* hosts/leaf *))
        (int_bound (Array.length schemes - 1))
        (int_range 1 1000 (* seed *)))
    (fun (leaves, hosts_per_leaf, scheme_i, seed) ->
      let scheme = schemes.(scheme_i) in
      let asymmetric = seed mod 2 = 0 in
      let params = params ~leaves ~hosts_per_leaf ~asymmetric ~seed in
      let load = 0.2 +. (0.2 *. float_of_int (seed mod 3)) in
      let run shards =
        run_once ~shards ~scheme ~params ~load ~jobs_per_conn:3
      in
      let serial = run 1 in
      String.length serial > 0 (* a trivially empty run proves nothing *)
      && List.for_all
           (fun n -> if n > leaves then true else String.equal serial (run n))
           [ 2; 4 ])

(* The serial fallback reorders stats but must not change their content:
   same multiset of records as the legacy path. *)
let test_fallback_matches_legacy_records () =
  let params = params ~leaves:2 ~hosts_per_leaf:4 ~asymmetric:true ~seed:7 in
  let run shards =
    run_once ~shards ~scheme:Scenario.S_clove_ecn ~params ~load:0.4
      ~jobs_per_conn:5
  in
  (* canonical_dump sorts both, so legacy (0) and fallback (1) agree *)
  check_string "legacy and serial-fallback digests equal" (run 0) (run 1)

(* 3-tier Clos under CAFT: PDES shards the core tier round-robin along
   with the flattened leaves; digests must stay byte-identical at every
   width, including the hop-by-hop picker state on core switches. *)
let test_clos3_caft_sharded_digest () =
  let params =
    {
      Scenario.default_params with
      Scenario.pods = 2;
      hosts_per_leaf = 2;
      seed = 11;
      size_scale = 0.1;
    }
  in
  let run shards =
    run_once ~shards ~scheme:Scenario.S_caft ~params ~load:0.2 ~jobs_per_conn:3
  in
  let serial = run 1 in
  check_bool "3-tier run not empty" true (String.length serial > 0);
  check_string "legacy = serial fallback" (run 0) serial;
  check_string "shard 2 = serial" serial (run 2);
  check_string "shard 4 = serial" serial (run 4)

(* ------------------- window validation at plan time ----------------- *)

let test_window_rejects_short_cross_link () =
  let ls =
    Topology.leaf_spine ~leaves:2 ~spines:2 ~hosts_per_leaf:2 ~parallel:1
      ~host_rate_bps:10e9 ~fabric_rate_bps:20e9 ~host_delay:(Sim_time.us 2)
      ~fabric_delay:(Sim_time.us 2)
  in
  (* hosts follow their leaf; leaf 1 and spine 1 on shard 1: every
     leaf-spine edge between distinct shards crosses *)
  let shard_of id =
    if id = ls.Topology.leaf_ids.(1) || id = ls.Topology.spine_ids.(1)
       || Array.exists (fun h -> h = id) ls.Topology.host_ids.(1)
    then 1
    else 0
  in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (* a 10us window exceeds the 2us cross-link latency: must be rejected
     with a message naming the offending link *)
  let rejected =
    match
      Partition.plan ~topo:ls.Topology.topo ~nshards:2 ~shard_of_node:shard_of
        ~window:(Sim_time.us 10) ()
    with
    | exception Invalid_argument msg -> contains ~sub:"lookahead window" msg
    | _ -> false
  in
  check_bool "short cross-shard link rejected at plan time" true rejected;
  (* the inferred window is the minimum cross latency and is accepted *)
  let p =
    Partition.plan ~topo:ls.Topology.topo ~nshards:2 ~shard_of_node:shard_of ()
  in
  Alcotest.(check int) "inferred window = 2us fabric hop" 2_000
    (Partition.window_ns p)

let test_width_clamps_to_leaves () =
  let params = params ~leaves:2 ~hosts_per_leaf:2 ~asymmetric:false ~seed:1 in
  let scn = Scenario.build ~shards:5 ~scheme:Scenario.S_ecmp params in
  Alcotest.(check int) "width clamps to one shard per leaf" 2
    (Scenario.shards scn);
  Scenario.quiesce scn

let test_mptcp_degrades_to_serial_fallback () =
  let params = params ~leaves:2 ~hosts_per_leaf:2 ~asymmetric:false ~seed:1 in
  let scn = Scenario.build ~shards:2 ~scheme:Scenario.S_mptcp params in
  Alcotest.(check int) "sharded MPTCP runs the serial fallback" 1
    (Scenario.shards scn);
  check_bool "no shard coordinator" true (Option.is_none (Scenario.shard scn));
  Scenario.quiesce scn

let () =
  Alcotest.run "pdes"
    [
      ( "determinism",
        [
          qc prop_sharded_equals_serial;
          Alcotest.test_case "fallback = legacy records" `Quick
            test_fallback_matches_legacy_records;
          Alcotest.test_case "3-tier CAFT digests shard-invariant" `Quick
            test_clos3_caft_sharded_digest;
        ] );
      ( "partition",
        [
          Alcotest.test_case "short cross link rejected" `Quick
            test_window_rejects_short_cross_link;
          Alcotest.test_case "width clamps to leaves" `Quick
            test_width_clamps_to_leaves;
          Alcotest.test_case "sharded MPTCP degrades to fallback" `Quick
            test_mptcp_degrades_to_serial_fallback;
        ] );
    ]
