(* Determinism of the parallel sweep engine: fanning experiment points
   across domains must produce byte-identical results to a serial run —
   per point, and through the memoized figure path.  These tests spawn
   real domains (explicit ~domains:2) even on a single-core host. *)

open Experiments

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let small_params seed =
  {
    Scenario.default_params with
    Scenario.asymmetric = true;
    seed;
    hosts_per_leaf = 4;
    fabric_rate_bps = 4.0 *. 10e9 /. 4.0;
  }

let small_points () =
  Array.of_list
    (List.concat_map
       (fun scheme ->
         List.concat_map
           (fun load ->
             List.map
               (fun seed ->
                 {
                   Sweep.pt_scheme = scheme;
                   pt_params = small_params seed;
                   pt_load = load;
                   pt_jobs_per_conn = 4;
                 })
               [ 1; 2 ])
           [ 0.3; 0.6 ])
       [ Scenario.S_ecmp; Scenario.S_clove_ecn ])

let dumps results = Array.map Workload.Fct_stats.canonical_dump results

let test_two_domains_byte_identical () =
  let points = small_points () in
  let serial = dumps (Sweep.run_points_parallel ~domains:1 points) in
  let par = dumps (Sweep.run_points_parallel ~domains:2 points) in
  check_int "same number of results" (Array.length serial) (Array.length par);
  Array.iteri
    (fun i s ->
      check_string (Printf.sprintf "point %d identical under 2 domains" i) s
        par.(i))
    serial

let test_results_indexed_not_completion_ordered () =
  (* points with very different costs: if results were collected in
     completion order the cheap point would land in the wrong slot *)
  let mk jobs seed =
    {
      Sweep.pt_scheme = Scenario.S_ecmp;
      pt_params = small_params seed;
      pt_load = 0.4;
      pt_jobs_per_conn = jobs;
    }
  in
  let heavy_first = [| mk 10 1; mk 2 2 |] in
  let serial = dumps (Sweep.run_points_parallel ~domains:1 heavy_first) in
  let par = dumps (Sweep.run_points_parallel ~domains:2 heavy_first) in
  check_string "slow point stays at index 0" serial.(0) par.(0);
  check_string "fast point stays at index 1" serial.(1) par.(1)

let opts = { Sweep.jobs_per_conn = 4; seeds = [ 1; 2 ] }

let memo_spec scheme = (scheme, small_params 1, 0.5, opts)

let test_prefetch_matches_serial_point () =
  (* the merged, memoized answer must not depend on how it was computed:
     serial on-demand vs parallel prefetch across 2 domains *)
  Sweep.clear_memo ();
  let serial_dump scheme =
    let (sch, params, load, opts) = memo_spec scheme in
    Workload.Fct_stats.canonical_dump
      (Sweep.websearch_point ~scheme:sch ~params ~load ~opts)
  in
  let expected_ecmp = serial_dump Scenario.S_ecmp in
  let expected_clove = serial_dump Scenario.S_clove_ecn in
  Sweep.clear_memo ();
  Sweep.prefetch_points ~domains:2
    [ memo_spec Scenario.S_ecmp; memo_spec Scenario.S_clove_ecn ];
  let fetched scheme =
    let (sch, params, load, opts) = memo_spec scheme in
    Workload.Fct_stats.canonical_dump
      (Sweep.websearch_point ~scheme:sch ~params ~load ~opts)
  in
  check_string "ecmp: prefetched merge identical" expected_ecmp
    (fetched Scenario.S_ecmp);
  check_string "clove-ecn: prefetched merge identical" expected_clove
    (fetched Scenario.S_clove_ecn);
  Sweep.clear_memo ()

let test_repeated_parallel_runs_stable () =
  (* same points, same domain count, fresh pool each time: the engine
     itself must not inject nondeterminism (scheduling, pooling, uids) *)
  let points = small_points () in
  let a = dumps (Sweep.run_points_parallel ~domains:2 points) in
  let b = dumps (Sweep.run_points_parallel ~domains:2 points) in
  Array.iteri
    (fun i s -> check_string (Printf.sprintf "run-to-run point %d" i) s b.(i))
    a

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "2 domains byte-identical to serial" `Quick
            test_two_domains_byte_identical;
          Alcotest.test_case "results merged by index" `Quick
            test_results_indexed_not_completion_ordered;
          Alcotest.test_case "prefetch equals serial memo path" `Quick
            test_prefetch_matches_serial_point;
          Alcotest.test_case "run-to-run stable" `Quick
            test_repeated_parallel_runs_stable;
        ] );
    ]
