(* Unit tests for the Clove core: flowlet detection, weighted round robin,
   path selection, path tables, traceroute discovery, Presto reassembly,
   and the virtual-switch feedback machinery. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Clove.Clove_config.default

(* -------------------------------- Flowlet ------------------------- *)

let test_flowlet_gap_detection () =
  let sched = Scheduler.create () in
  let t = Clove.Flowlet.create ~sched ~gap:(Sim_time.us 10) ~dummy:0 in
  let picks = ref 0 in
  let pick ~flowlet_id =
    incr picks;
    flowlet_id
  in
  let d0 = Clove.Flowlet.touch t ~key:1 ~pick in
  check_int "first packet opens flowlet 0" 0 d0;
  (* a packet within the gap keeps the decision *)
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.us 5) (fun () ->
         check_int "same flowlet" 0 (Clove.Flowlet.touch t ~key:1 ~pick)));
  Scheduler.run sched;
  (* after an idle gap a new flowlet opens *)
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.us 20) (fun () ->
         check_int "new flowlet" 1 (Clove.Flowlet.touch t ~key:1 ~pick)));
  Scheduler.run sched;
  check_int "two picks" 2 !picks;
  check_int "flowlets counted" 2 (Clove.Flowlet.flowlets_started t)

let test_flowlet_keys_independent () =
  let sched = Scheduler.create () in
  let t = Clove.Flowlet.create ~sched ~gap:(Sim_time.us 10) ~dummy:0 in
  ignore (Clove.Flowlet.touch t ~key:1 ~pick:(fun ~flowlet_id -> flowlet_id));
  ignore (Clove.Flowlet.touch t ~key:2 ~pick:(fun ~flowlet_id -> flowlet_id + 100));
  check_int "two flows tracked" 2 (Clove.Flowlet.flows_tracked t);
  Alcotest.(check (option int))
    "flow 2 decision" (Some 100)
    (Clove.Flowlet.active_flowlet t ~key:2)

let test_flowlet_gap_boundary () =
  (* a packet at exactly the gap must open a new flowlet (>= semantics) *)
  let sched = Scheduler.create () in
  let t = Clove.Flowlet.create ~sched ~gap:(Sim_time.us 10) ~dummy:0 in
  ignore (Clove.Flowlet.touch t ~key:1 ~pick:(fun ~flowlet_id -> flowlet_id));
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.us 10) (fun () ->
         check_int "boundary opens new" 1
           (Clove.Flowlet.touch t ~key:1 ~pick:(fun ~flowlet_id -> flowlet_id))));
  Scheduler.run sched

let test_flowlet_expiry () =
  let sched = Scheduler.create () in
  let t = Clove.Flowlet.create ~sched ~gap:(Sim_time.us 10) ~dummy:0 in
  ignore (Clove.Flowlet.touch t ~key:1 ~pick:(fun ~flowlet_id -> flowlet_id));
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.ms 5) (fun () ->
         Clove.Flowlet.expire_older_than t (Sim_time.ms 1);
         check_int "expired" 0 (Clove.Flowlet.flows_tracked t)));
  Scheduler.run sched

(* ---------------------------------- Wrr --------------------------- *)

let test_wrr_proportions () =
  let w = Clove.Wrr.create ~weights:[| 1.0; 2.0; 1.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 4000 do
    let i = Clove.Wrr.pick w in
    counts.(i) <- counts.(i) + 1
  done;
  check_int "item 0 quarter" 1000 counts.(0);
  check_int "item 1 half" 2000 counts.(1);
  check_int "item 2 quarter" 1000 counts.(2)

let test_wrr_zero_weight_starves () =
  let w = Clove.Wrr.create ~weights:[| 1.0; 1.0 |] in
  Clove.Wrr.set_weight w 0 0.0;
  for _ = 1 to 100 do
    check_int "only index 1" 1 (Clove.Wrr.pick w)
  done

let test_wrr_smoothness () =
  (* weights 3:1 -> the light item appears spread out, not clumped *)
  let w = Clove.Wrr.create ~weights:[| 3.0; 1.0 |] in
  let seq = List.init 8 (fun _ -> Clove.Wrr.pick w) in
  check_int "item1 twice in 8" 2 (List.length (List.filter (fun i -> i = 1) seq))

let test_wrr_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Wrr.create: empty") (fun () ->
      ignore (Clove.Wrr.create ~weights:[||]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Wrr.create: non-positive total weight") (fun () ->
      ignore (Clove.Wrr.create ~weights:[| 0.0; 0.0 |]))

let prop_wrr_follows_weights =
  QCheck.Test.make ~name:"wrr frequencies proportional to weights" ~count:50
    QCheck.(list_of_size Gen.(int_range 2 6) (int_range 1 9))
    (fun ws ->
      let weights = Array.of_list (List.map float_of_int ws) in
      let w = Clove.Wrr.create ~weights in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let rounds = 120 in
      let n = int_of_float (float_of_int rounds *. total) in
      let counts = Array.make (Array.length weights) 0 in
      for _ = 1 to n do
        let i = Clove.Wrr.pick w in
        counts.(i) <- counts.(i) + 1
      done;
      Array.for_all (fun x -> x)
        (Array.mapi (fun i c -> c = rounds * int_of_float weights.(i)) counts))

(* ------------------------------- Clove_path ----------------------- *)

let hop node port = { Packet.hop_node = node; hop_port = port }

let test_path_signature_and_equal () =
  let p1 = [ hop 1 0; hop 2 1 ] and p2 = [ hop 1 0; hop 2 1 ] in
  let p3 = [ hop 1 0; hop 2 2 ] in
  check_bool "equal" true (Clove.Clove_path.equal p1 p2);
  check_int "same signature" (Clove.Clove_path.signature p1)
    (Clove.Clove_path.signature p2);
  check_bool "different" false (Clove.Clove_path.equal p1 p3)

let test_select_disjoint_prefers_disjoint () =
  (* three candidates: a and a' share their final link (same destination
     ingress interface), b is fully disjoint past the first hop; k=2 must
     pick one of {a, a'} plus b, never a with a' *)
  let a = (50001, [ hop 0 0; hop 10 0; hop 1 0 ]) in
  let a' = (50002, [ hop 0 0; hop 10 1; hop 1 0 ]) in
  let b = (50003, [ hop 0 0; hop 20 0; hop 1 2 ]) in
  let picked = Clove.Clove_path.select_disjoint ~k:2 [ a; a'; b ] in
  check_int "picked 2" 2 (List.length picked);
  let ports = List.map fst picked |> List.sort compare in
  check_bool "b is included" true (List.mem 50003 ports);
  check_bool "not both bottleneck-sharing paths" false
    (List.mem 50001 ports && List.mem 50002 ports)

let test_select_disjoint_dedupes () =
  let p = [ hop 0 0; hop 10 0 ] in
  let picked =
    Clove.Clove_path.select_disjoint ~k:4 [ (50002, p); (50001, p); (50003, p) ]
  in
  check_int "duplicates collapsed" 1 (List.length picked);
  check_int "lowest port kept" 50001 (fst (List.hd picked))

let test_select_disjoint_k_limit () =
  let cands = List.init 10 (fun i -> (50000 + i, [ hop 0 0; hop (10 + i) 0 ])) in
  check_int "at most k" 4 (List.length (Clove.Clove_path.select_disjoint ~k:4 cands));
  check_int "k=0 empty" 0 (List.length (Clove.Clove_path.select_disjoint ~k:0 cands))

(* ------------------------------- Path_table ----------------------- *)

let mk_table () =
  let sched = Scheduler.create () in
  let t = Clove.Path_table.create ~sched ~cfg in
  Clove.Path_table.install t
    [
      (50001, [ hop 2 0 ]);
      (50002, [ hop 2 1 ]);
      (50003, [ hop 3 0 ]);
      (50004, [ hop 3 1 ]);
    ];
  (sched, t)

let test_path_table_wrr_uniform () =
  let _, t = mk_table () in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 400 do
    let p = Clove.Path_table.pick_wrr t in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  Hashtbl.iter (fun _ c -> check_int "uniform 100 each" 100 c) counts

let test_path_table_congestion_shifts_weight () =
  let _, t = mk_table () in
  Clove.Path_table.note_congested t ~port:50001;
  let w = Clove.Path_table.weights t in
  check_bool "congested lighter" true (w.(0) < 0.25);
  check_bool "others heavier" true (w.(1) > 0.25 && w.(2) > 0.25 && w.(3) > 0.25);
  Alcotest.(check (float 1e-6)) "weights normalized" 1.0 (Array.fold_left ( +. ) 0.0 w)

let test_path_table_unknown_port_ignored () =
  let _, t = mk_table () in
  Clove.Path_table.note_congested t ~port:60000;
  Alcotest.(check (float 1e-6)) "unchanged" 0.25 (Clove.Path_table.weights t).(0)

let test_path_table_least_utilized () =
  let _, t = mk_table () in
  Clove.Path_table.note_util t ~port:50001 ~util:0.9;
  Clove.Path_table.note_util t ~port:50002 ~util:0.4;
  Clove.Path_table.note_util t ~port:50003 ~util:0.1;
  Clove.Path_table.note_util t ~port:50004 ~util:0.7;
  check_int "least utilized" 50003 (Clove.Path_table.pick_least_utilized t)

let test_path_table_all_congested () =
  let _, t = mk_table () in
  check_bool "not initially" false (Clove.Path_table.all_congested t);
  List.iter
    (fun port -> Clove.Path_table.note_congested t ~port)
    [ 50001; 50002; 50003; 50004 ];
  check_bool "all congested" true (Clove.Path_table.all_congested t)

let test_path_table_state_survives_remap () =
  let _, t = mk_table () in
  Clove.Path_table.note_util t ~port:50001 ~util:0.9;
  (* rediscovery: the same physical path now maps to a different port *)
  Clove.Path_table.install t [ (51111, [ hop 2 0 ]); (50003, [ hop 3 0 ]) ];
  let utils = Clove.Path_table.utilization t in
  let ports = Clove.Path_table.ports t in
  let idx = ref (-1) in
  Array.iteri (fun i p -> if p = 51111 then idx := i) ports;
  check_bool "found port" true (!idx >= 0);
  Alcotest.(check (float 1e-9)) "utilization carried over" 0.9 utils.(!idx)

let test_path_table_weight_floor () =
  let _, t = mk_table () in
  for _ = 1 to 50 do
    Clove.Path_table.note_congested t ~port:50001
  done;
  let w = Clove.Path_table.weights t in
  check_bool "never zero" true (w.(0) > 0.0)

(* ------------------------------ Traceroute ------------------------ *)

let build_scenario ?(asymmetric = false) scheme =
  let params = { Experiments.Scenario.default_params with asymmetric; seed = 5 } in
  Experiments.Scenario.build ~scheme params

let test_traceroute_discovers_four_disjoint () =
  let scn = build_scenario Experiments.Scenario.S_clove_ecn in
  let client = (Experiments.Scenario.clients scn).(0) in
  let server = (Experiments.Scenario.servers scn).(0) in
  let v = Experiments.Scenario.vswitch scn client in
  Clove.Vswitch.add_destination v (Host.addr server);
  Scheduler.run
    ~until:(Sim_time.of_ns (Sim_time.span_ns (Sim_time.ms 15)))
    (Experiments.Scenario.sched scn);
  (match Clove.Vswitch.path_table v (Host.addr server) with
  | None -> Alcotest.fail "no paths discovered"
  | Some tbl ->
    check_int "four distinct paths" 4 (Clove.Path_table.port_count tbl);
    let paths = Clove.Path_table.paths tbl in
    Array.iter (fun p -> check_int "3 hops" 3 (List.length p)) paths;
    Array.iteri
      (fun i p ->
        Array.iteri
          (fun j q ->
            if i < j then
              check_bool "pairwise distinct" false (Clove.Clove_path.equal p q))
          paths)
      paths);
  Experiments.Scenario.quiesce scn

let test_traceroute_survives_failure () =
  let scn = build_scenario Experiments.Scenario.S_clove_ecn in
  let client = (Experiments.Scenario.clients scn).(0) in
  let server = (Experiments.Scenario.servers scn).(0) in
  let v = Experiments.Scenario.vswitch scn client in
  Clove.Vswitch.add_destination v (Host.addr server);
  let sched = Experiments.Scenario.sched scn in
  Scheduler.run ~until:(Sim_time.of_ns (Sim_time.span_ns (Sim_time.ms 15))) sched;
  (* fail one fabric link, wait for the next probe cycle *)
  let topo = Fabric.topology (Experiments.Scenario.fabric scn) in
  let fabric = Experiments.Scenario.fabric scn in
  let edge =
    List.find
      (fun (e : Topology.edge) ->
        (not (Topology.is_host topo e.Topology.a))
        && not (Topology.is_host topo e.Topology.b))
      (Topology.edges topo)
  in
  Fabric.fail_edge fabric edge;
  Scheduler.run ~until:(Sim_time.of_ns (Sim_time.span_ns (Sim_time.ms 540))) sched;
  (match Clove.Vswitch.path_table v (Host.addr server) with
  | None -> Alcotest.fail "paths lost after failure"
  | Some tbl -> check_bool "still has paths" true (Clove.Path_table.port_count tbl >= 3));
  Experiments.Scenario.quiesce scn

(* ------------------------------- Presto_rx ------------------------ *)

let mk_inner seq =
  {
    Packet.src = Addr.of_int 0;
    dst = Addr.of_int 1;
    inner_ecn = Packet.Not_ect;
    seg =
      {
        Packet.conn_id = 1;
        subflow = 0;
        src_port = 1;
        dst_port = 2;
        seq;
        ack = 0;
        kind = Packet.Data;
        payload = 100;
        ece = false;
      };
  }

let test_presto_rx_in_order_passthrough () =
  let sched = Scheduler.create () in
  let out = ref [] in
  let rx =
    Clove.Presto_rx.create ~sched ~cfg ~deliver:(fun i ->
        out := i.Packet.seg.Packet.seq :: !out)
  in
  for i = 0 to 4 do
    Clove.Presto_rx.on_packet rx (mk_inner i)
      ~cell:{ Packet.flow_key = 7; cell_id = 0; cell_seq = i }
  done;
  Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3; 4 ] (List.rev !out);
  check_int "nothing buffered" 0 (Clove.Presto_rx.buffered rx)

let test_presto_rx_reorders () =
  let sched = Scheduler.create () in
  let out = ref [] in
  let rx =
    Clove.Presto_rx.create ~sched ~cfg ~deliver:(fun i ->
        out := i.Packet.seg.Packet.seq :: !out)
  in
  let deliver seq cseq =
    Clove.Presto_rx.on_packet rx (mk_inner seq)
      ~cell:{ Packet.flow_key = 7; cell_id = 0; cell_seq = cseq }
  in
  deliver 0 0;
  deliver 2 2;
  deliver 3 3;
  check_int "buffered two" 2 (Clove.Presto_rx.buffered rx);
  Alcotest.(check (list int)) "only first delivered" [ 0 ] (List.rev !out);
  deliver 1 1;
  Alcotest.(check (list int)) "drained in order" [ 0; 1; 2; 3 ] (List.rev !out);
  check_int "reordered counted" 2 (Clove.Presto_rx.reordered rx)

let test_presto_rx_timeout_flush () =
  let sched = Scheduler.create () in
  let out = ref [] in
  let rx =
    Clove.Presto_rx.create ~sched ~cfg ~deliver:(fun i ->
        out := i.Packet.seg.Packet.seq :: !out)
  in
  let deliver seq cseq =
    Clove.Presto_rx.on_packet rx (mk_inner seq)
      ~cell:{ Packet.flow_key = 7; cell_id = 0; cell_seq = cseq }
  in
  deliver 0 0;
  deliver 2 2 (* hole at 1; packet 1 was lost *);
  Scheduler.run sched (* reorder timeout fires *);
  Alcotest.(check (list int)) "flushed after timeout" [ 0; 2 ] (List.rev !out);
  check_int "flush counted" 1 (Clove.Presto_rx.timeout_flushes rx);
  deliver 1 1;
  Alcotest.(check (list int)) "late packet delivered" [ 0; 2; 1 ] (List.rev !out)

let test_presto_rx_flows_isolated () =
  let sched = Scheduler.create () in
  let out = ref 0 in
  let rx = Clove.Presto_rx.create ~sched ~cfg ~deliver:(fun _ -> incr out) in
  Clove.Presto_rx.on_packet rx (mk_inner 5)
    ~cell:{ Packet.flow_key = 1; cell_id = 0; cell_seq = 5 };
  Clove.Presto_rx.on_packet rx (mk_inner 0)
    ~cell:{ Packet.flow_key = 2; cell_id = 0; cell_seq = 0 };
  check_int "flow B delivered" 1 !out

(* -------------------------------- Vswitch ------------------------- *)

let test_vswitch_schemes_roundtrip () =
  List.iter
    (fun s ->
      match Clove.Vswitch.scheme_of_string (Clove.Vswitch.scheme_name s) with
      | Some s' -> check_bool "roundtrip" true (s = s')
      | None -> Alcotest.fail "scheme name roundtrip failed")
    Clove.Vswitch.all_schemes

let test_vswitch_end_to_end_per_scheme () =
  (* every dataplane must deliver a transfer end to end *)
  List.iter
    (fun scheme ->
      let scn = build_scenario scheme in
      let sched = Experiments.Scenario.sched scn in
      let client = (Experiments.Scenario.clients scn).(0) in
      let server = (Experiments.Scenario.servers scn).(0) in
      let submit = Experiments.Scenario.connect scn ~src:client ~dst:server in
      let finished = ref false in
      ignore
        (Scheduler.schedule sched ~after:(Sim_time.ms 25) (fun () ->
             submit ~bytes:200_000 ~on_complete:(fun () -> finished := true)));
      Scheduler.run ~until:(Sim_time.of_ns 200_000_000) sched;
      Alcotest.(check bool)
        (Experiments.Scenario.scheme_name scheme ^ " completes")
        true !finished;
      Experiments.Scenario.quiesce scn)
    Experiments.Scenario.
      [ S_ecmp; S_edge_flowlet; S_clove_ecn; S_clove_int; S_presto; S_mptcp; S_conga ]

let test_vswitch_ecn_feedback_loop () =
  (* under sustained congestion on the asymmetric fabric, Clove-ECN
     feedback must reach the senders' vswitches and shift weights away
     from congested ports *)
  let scn = build_scenario ~asymmetric:true Experiments.Scenario.S_clove_ecn in
  let sched = Experiments.Scenario.sched scn in
  let clients = Experiments.Scenario.clients scn in
  let server = (Experiments.Scenario.servers scn).(0) in
  let submits =
    Array.map (fun c -> Experiments.Scenario.connect scn ~src:c ~dst:server) clients
  in
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.ms 25) (fun () ->
         Array.iter
           (fun submit -> submit ~bytes:3_000_000 ~on_complete:(fun () -> ()))
           submits));
  Scheduler.run ~until:(Sim_time.of_ns 80_000_000) sched;
  (* at least one client's vswitch has seen feedback and skewed weights *)
  let any_feedback = ref false and any_skew = ref false in
  Array.iter
    (fun c ->
      let v = Experiments.Scenario.vswitch scn c in
      let stats = Clove.Vswitch.stats v in
      if stats.Clove.Vswitch.congestion_feedback_seen > 0 then any_feedback := true;
      match Clove.Vswitch.path_table v (Host.addr server) with
      | Some tbl ->
        let w = Clove.Path_table.weights tbl in
        let spread =
          Array.fold_left Float.max 0.0 w -. Array.fold_left Float.min 1.0 w
        in
        if spread > 0.01 then any_skew := true
      | None -> ())
    clients;
  check_bool "congestion feedback arrived" true !any_feedback;
  check_bool "weights adapted" true !any_skew;
  Experiments.Scenario.quiesce scn

let test_vswitch_feedback_carrier_when_no_reverse_traffic () =
  (* if the receiver has no reverse traffic to piggyback on, it must send a
     dedicated carrier packet within the deadline *)
  let scn = build_scenario Experiments.Scenario.S_clove_ecn in
  let sched = Experiments.Scenario.sched scn in
  let client = (Experiments.Scenario.clients scn).(0) in
  let server = (Experiments.Scenario.servers scn).(0) in
  let seg =
    {
      Packet.conn_id = 999;
      subflow = 0;
      src_port = 1;
      dst_port = 2;
      seq = 0;
      ack = 0;
      kind = Packet.Data;
      payload = 100;
      ece = false;
    }
  in
  let pkt = Packet.make_tenant ~src:(Host.addr client) ~dst:(Host.addr server) ~seg in
  pkt.Packet.encap <-
    Some
      {
        Packet.src_hv = Host.addr client;
        dst_hv = Host.addr server;
        src_port = 55555;
        dst_port = Packet.stt_port;
        feedback = None;
        cell = None;
      };
  pkt.Packet.ecn <- Packet.Ce;
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.ms 1) (fun () -> Host.deliver server pkt));
  Scheduler.run ~until:(Sim_time.of_ns 10_000_000) sched;
  let stats = Clove.Vswitch.stats (Experiments.Scenario.vswitch scn server) in
  check_bool "carrier sent" true (stats.Clove.Vswitch.feedback_carriers >= 1);
  Experiments.Scenario.quiesce scn

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "clove"
    [
      ( "flowlet",
        [
          Alcotest.test_case "gap detection" `Quick test_flowlet_gap_detection;
          Alcotest.test_case "keys independent" `Quick test_flowlet_keys_independent;
          Alcotest.test_case "gap boundary" `Quick test_flowlet_gap_boundary;
          Alcotest.test_case "expiry" `Quick test_flowlet_expiry;
        ] );
      ( "wrr",
        [
          Alcotest.test_case "proportions" `Quick test_wrr_proportions;
          Alcotest.test_case "zero weight starves" `Quick test_wrr_zero_weight_starves;
          Alcotest.test_case "smooth interleaving" `Quick test_wrr_smoothness;
          Alcotest.test_case "invalid input" `Quick test_wrr_invalid;
          qc prop_wrr_follows_weights;
        ] );
      ( "path",
        [
          Alcotest.test_case "signature and equality" `Quick test_path_signature_and_equal;
          Alcotest.test_case "disjoint preference" `Quick test_select_disjoint_prefers_disjoint;
          Alcotest.test_case "dedupe" `Quick test_select_disjoint_dedupes;
          Alcotest.test_case "k limit" `Quick test_select_disjoint_k_limit;
        ] );
      ( "path_table",
        [
          Alcotest.test_case "wrr uniform" `Quick test_path_table_wrr_uniform;
          Alcotest.test_case "congestion shifts weight" `Quick
            test_path_table_congestion_shifts_weight;
          Alcotest.test_case "unknown port ignored" `Quick test_path_table_unknown_port_ignored;
          Alcotest.test_case "least utilized" `Quick test_path_table_least_utilized;
          Alcotest.test_case "all congested" `Quick test_path_table_all_congested;
          Alcotest.test_case "state survives remap" `Quick test_path_table_state_survives_remap;
          Alcotest.test_case "weight floor" `Quick test_path_table_weight_floor;
        ] );
      ( "traceroute",
        [
          Alcotest.test_case "discovers four disjoint paths" `Quick
            test_traceroute_discovers_four_disjoint;
          Alcotest.test_case "survives link failure" `Quick test_traceroute_survives_failure;
        ] );
      ( "presto_rx",
        [
          Alcotest.test_case "in-order passthrough" `Quick test_presto_rx_in_order_passthrough;
          Alcotest.test_case "reorders" `Quick test_presto_rx_reorders;
          Alcotest.test_case "timeout flush" `Quick test_presto_rx_timeout_flush;
          Alcotest.test_case "flows isolated" `Quick test_presto_rx_flows_isolated;
        ] );
      ( "vswitch",
        [
          Alcotest.test_case "scheme names roundtrip" `Quick test_vswitch_schemes_roundtrip;
          Alcotest.test_case "every scheme end to end" `Slow test_vswitch_end_to_end_per_scheme;
          Alcotest.test_case "ecn feedback loop" `Slow test_vswitch_ecn_feedback_loop;
          Alcotest.test_case "feedback carrier" `Quick
            test_vswitch_feedback_carrier_when_no_reverse_traffic;
        ] );
    ]
