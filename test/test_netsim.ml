(* Unit and property tests for the network substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_seg ?(payload = 1400) ?(kind = Packet.Data) () =
  {
    Packet.conn_id = 1;
    subflow = 0;
    src_port = 1000;
    dst_port = 80;
    seq = 0;
    ack = 0;
    kind;
    payload;
    ece = false;
  }

let mk_data ?(src = 0) ?(dst = 1) ?payload () =
  Packet.make_tenant ~src:(Addr.of_int src) ~dst:(Addr.of_int dst)
    ~seg:(mk_seg ?payload ())

let encapsulate ?(src_port = 50000) pkt ~src ~dst =
  pkt.Packet.encap <-
    Some
      {
        Packet.src_hv = Addr.of_int src;
        dst_hv = Addr.of_int dst;
        src_port;
        dst_port = Packet.stt_port;
        feedback = None;
        cell = None;
      };
  pkt.Packet.size <- pkt.Packet.size + Packet.encap_header_bytes;
  pkt

(* -------------------------------- Packet -------------------------- *)

let test_packet_sizes () =
  let pkt = mk_data () in
  check_int "wire size" (1400 + Packet.inner_header_bytes) pkt.Packet.size;
  let pkt = encapsulate pkt ~src:0 ~dst:1 in
  check_int "encap adds header" (1400 + 40 + 58) pkt.Packet.size

let test_packet_route_dst () =
  let pkt = mk_data ~src:0 ~dst:1 () in
  check_int "inner dst" 1 (Addr.to_int (Packet.route_dst pkt));
  let pkt = encapsulate pkt ~src:5 ~dst:9 in
  check_int "outer dst wins" 9 (Addr.to_int (Packet.route_dst pkt))

let test_packet_uids_unique () =
  let a = mk_data () and b = mk_data () in
  check_bool "uids differ" true (a.Packet.uid <> b.Packet.uid)

let test_flow_key_stability () =
  let a = mk_data () and b = mk_data () in
  let key p = match p.Packet.payload with Packet.Tenant i -> Packet.tcp_flow_key i | _ -> 0 in
  check_int "same tuple same key" (key a) (key b)

let prop_flow_key_matches_tuple_hash =
  (* the scratch-record hash must be bit-identical to hashing the plain
     5-tuple — [Hashtbl.hash] is structural and a mutable all-int record
     has a tuple's runtime representation.  The key values feed ECMP
     port choices, so this equality is what keeps digests stable across
     the allocation-free rewrite. *)
  QCheck.Test.make ~name:"flow key equals tuple hash" ~count:500
    QCheck.(
      quad (int_bound 1023) (int_bound 1023)
        (pair (int_bound 65_535) (int_bound 65_535))
        (int_bound 7))
    (fun (src, dst, (sp, dp), subflow) ->
      let seg = { (mk_seg ()) with Packet.src_port = sp; dst_port = dp; subflow } in
      let pkt =
        Packet.make_tenant ~src:(Addr.of_int src) ~dst:(Addr.of_int dst) ~seg
      in
      match pkt.Packet.payload with
      | Packet.Tenant inner ->
        Packet.tcp_flow_key inner = Hashtbl.hash (src, dst, sp, dp, subflow)
        && Packet.tcp_flow_key_rev inner = Hashtbl.hash (dst, src, dp, sp, subflow)
      | _ -> false)

(* ------------------------------- Ecmp_hash ------------------------ *)

let test_hash_deterministic () =
  let h1 = Ecmp_hash.hash_tuple ~seed:1 (1, 2, 3, 4) in
  let h2 = Ecmp_hash.hash_tuple ~seed:1 (1, 2, 3, 4) in
  check_int "deterministic" h1 h2;
  check_bool "seed matters" true (h1 <> Ecmp_hash.hash_tuple ~seed:2 (1, 2, 3, 4));
  check_bool "tuple matters" true (h1 <> Ecmp_hash.hash_tuple ~seed:1 (1, 2, 3, 5))

let test_hash_spreads_ports () =
  (* varying just the source port must spread over all next hops: this is
     the property Clove's indirect source routing depends on *)
  let pkt = mk_data () in
  let counts = Array.make 4 0 in
  for port = 50000 to 50999 do
    let pkt = { pkt with Packet.encap = None } in
    let pkt = encapsulate pkt ~src_port:port ~src:0 ~dst:1 in
    let i = Ecmp_hash.select ~seed:7 pkt ~n:4 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter (fun c -> check_bool "each next hop used" true (c > 150)) counts

let prop_hash_in_range =
  QCheck.Test.make ~name:"select stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 16))
    (fun (port, n) ->
      let pkt = encapsulate (mk_data ()) ~src_port:(abs port) ~src:0 ~dst:1 in
      let i = Ecmp_hash.select ~seed:3 pkt ~n in
      i >= 0 && i < n)

(* ---------------------------------- Dre --------------------------- *)

let test_dre_tracks_rate () =
  let sched = Scheduler.create () in
  let dre = Dre.create ~rate_bps:10e9 sched in
  (* send at exactly line rate for 300 us: utilization should approach 1 *)
  let pkt_bytes = 1250 in
  let interval = Sim_time.ns (pkt_bytes * 8 / 10) in
  (* 1250B at 10Gbps = 1us *)
  for i = 0 to 299 do
    ignore
      (Scheduler.schedule_at sched
         ~time:(Sim_time.of_ns (i * Sim_time.span_ns interval))
         (fun () -> Dre.observe dre ~bytes_len:pkt_bytes))
  done;
  Scheduler.run sched;
  let u = Dre.utilization dre in
  check_bool "near line rate" true (u > 0.8 && u < 1.3)

let test_dre_decays_when_idle () =
  let sched = Scheduler.create () in
  let dre = Dre.create ~rate_bps:10e9 sched in
  Dre.observe dre ~bytes_len:100_000;
  ignore (Scheduler.schedule sched ~after:(Sim_time.ms 10) (fun () -> ()));
  Scheduler.run sched;
  check_bool "decayed to ~0" true (Dre.utilization dre < 0.01)

(* ------------------------------- Pkt_queue ------------------------ *)

let test_queue_fifo () =
  let q = Pkt_queue.create () in
  let a = mk_data () and b = mk_data () in
  ignore (Pkt_queue.enqueue q a);
  ignore (Pkt_queue.enqueue q b);
  check_int "len" 2 (Pkt_queue.length q);
  (match Pkt_queue.dequeue q with
  | Some p -> check_int "fifo" a.Packet.uid p.Packet.uid
  | None -> Alcotest.fail "empty");
  check_int "bytes tracked" b.Packet.size (Pkt_queue.byte_length q)

let test_queue_drop_tail () =
  let q = Pkt_queue.create ~capacity_pkts:2 ~ecn_threshold_pkts:0 () in
  check_bool "ok" true (Pkt_queue.enqueue q (mk_data ()));
  check_bool "ok" true (Pkt_queue.enqueue q (mk_data ()));
  check_bool "dropped" false (Pkt_queue.enqueue q (mk_data ()));
  check_int "drop counted" 1 (Pkt_queue.stats q).Pkt_queue.dropped

let test_queue_ecn_marking () =
  let q = Pkt_queue.create ~capacity_pkts:100 ~ecn_threshold_pkts:3 () in
  let pkts = List.init 6 (fun _ ->
      let p = mk_data () in
      p.Packet.ecn <- Packet.Ect;
      p)
  in
  List.iter (fun p -> ignore (Pkt_queue.enqueue q p)) pkts;
  let marked = List.filter (fun p -> p.Packet.ecn = Packet.Ce) pkts in
  (* occupancy after enqueue exceeds 3 for packets 4..6 *)
  check_int "marks" 3 (List.length marked);
  check_int "stat" 3 (Pkt_queue.stats q).Pkt_queue.marked

let test_queue_no_mark_not_ect () =
  let q = Pkt_queue.create ~capacity_pkts:100 ~ecn_threshold_pkts:1 () in
  let pkts = List.init 4 (fun _ -> mk_data ()) in
  List.iter (fun p -> ignore (Pkt_queue.enqueue q p)) pkts;
  check_int "non-ECT never marked" 0 (Pkt_queue.stats q).Pkt_queue.marked

let test_queue_drop_accounting () =
  let q = Pkt_queue.create ~capacity_pkts:2 ~ecn_threshold_pkts:0 () in
  let a = mk_data () and b = mk_data () and c = mk_data ~payload:500 () in
  ignore (Pkt_queue.enqueue q a);
  ignore (Pkt_queue.enqueue q b);
  check_bool "third dropped" false (Pkt_queue.enqueue q c);
  let st = Pkt_queue.stats q in
  check_int "dropped bytes = dropped packet size" c.Packet.size
    st.Pkt_queue.dropped_bytes;
  check_int "max occupancy seen at the drop" 2 st.Pkt_queue.max_occupancy;
  (* the cached length stays in lockstep with the queue through a full
     drain-and-refill cycle *)
  check_int "len after drop" 2 (Pkt_queue.length q);
  ignore (Pkt_queue.dequeue q);
  check_int "len after dequeue" 1 (Pkt_queue.length q);
  check_int "bytes after dequeue" b.Packet.size (Pkt_queue.byte_length q);
  ignore (Pkt_queue.dequeue q);
  check_bool "empty again" true (Pkt_queue.is_empty q);
  check_bool "accepts after drain" true (Pkt_queue.enqueue q (mk_data ()))

(* ------------------------------ Packet_pool ----------------------- *)

let test_pool_recycles () =
  Packet_pool.reset_stats ();
  let acquire seq =
    Packet_pool.acquire_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1)
      ~conn_id:7 ~subflow:0 ~src_port:1000 ~dst_port:80 ~seq ~ack:0
      ~kind:Packet.Data ~payload:1400 ~ece:false
  in
  let a = mk_data () in
  Packet_pool.release a;
  let b = acquire 33 in
  check_bool "physically reused" true (a == b);
  check_bool "fresh uid" true (b.Packet.uid <> 0);
  check_int "size recomputed" (1400 + Packet.inner_header_bytes) b.Packet.size;
  (match b.Packet.payload with
  | Packet.Tenant inner ->
    check_int "inner dst reset" 1 (Addr.to_int inner.Packet.dst);
    check_int "seg seq reset" 33 inner.Packet.seg.Packet.seq
  | _ -> Alcotest.fail "expected tenant payload");
  check_bool "no stale encap" true (b.Packet.encap = None);
  let st = Packet_pool.stats () in
  check_int "one hit" 1 st.Packet_pool.hits

let test_pool_double_release_ignored () =
  Packet_pool.reset_stats ();
  let a = mk_data () in
  Packet_pool.release a;
  Packet_pool.release a;
  let b =
    Packet_pool.acquire_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1)
      ~conn_id:1 ~subflow:0 ~src_port:1 ~dst_port:2 ~seq:0 ~ack:0
      ~kind:Packet.Data ~payload:10 ~ece:false
  in
  let c =
    Packet_pool.acquire_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1)
      ~conn_id:1 ~subflow:0 ~src_port:1 ~dst_port:2 ~seq:0 ~ack:0
      ~kind:Packet.Data ~payload:10 ~ece:false
  in
  (* the second release was a no-op, so only one of the two acquires can
     be satisfied from the free list — never the same record twice *)
  check_bool "no aliasing" true (not (b == c));
  let st = Packet_pool.stats () in
  check_int "exactly one hit" 1 st.Packet_pool.hits;
  check_int "second acquire missed" 1 st.Packet_pool.misses

let prop_pool_model =
  (* model check against the non-pooled constructor: every acquire must be
     indistinguishable from a fresh [Packet.make_tenant] except for its
     (fresh) uid; releases feed the free list exactly once (double
     releases are no-ops); live packets never alias; the per-domain cap
     holds.  The free list is [Domain.DLS]-persistent across test cases,
     so all free-list assertions are relative (before/after deltas). *)
  QCheck.Test.make ~name:"pool acquire/release model" ~count:100
    QCheck.(small_list (pair bool small_nat))
    (fun ops ->
      Packet_pool.reset_stats ();
      let live = ref [] and dead = ref [] in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun (is_acquire, v) ->
          check ((Packet_pool.stats ()).Packet_pool.pooled <= 8192);
          if is_acquire then begin
            let src = Addr.of_int (v land 7)
            and dst = Addr.of_int (8 + (v land 7)) in
            let conn_id = v land 1023 and subflow = v land 3 in
            let src_port = 1000 + (v land 63) and dst_port = 80 in
            let seq = v and ack = v asr 1 in
            let payload = 1 + (v land 2047) and ece = v land 1 = 1 in
            let p =
              Packet_pool.acquire_tenant ~src ~dst ~conn_id ~subflow
                ~src_port ~dst_port ~seq ~ack ~kind:Packet.Data ~payload ~ece
            in
            let r =
              Packet.make_tenant ~src ~dst
                ~seg:
                  {
                    Packet.conn_id;
                    subflow;
                    src_port;
                    dst_port;
                    seq;
                    ack;
                    kind = Packet.Data;
                    payload;
                    ece;
                  }
            in
            check (p.Packet.size = r.Packet.size);
            check (p.Packet.ttl = r.Packet.ttl);
            check (p.Packet.ecn = r.Packet.ecn);
            check (p.Packet.encap = None && p.Packet.conga = None);
            check (p.Packet.int_enabled = r.Packet.int_enabled);
            check (p.Packet.int_util = r.Packet.int_util);
            check (p.Packet.sent_at = r.Packet.sent_at);
            check (p.Packet.audit_seq = r.Packet.audit_seq);
            (match (p.Packet.payload, r.Packet.payload) with
            | Packet.Tenant pi, Packet.Tenant ri ->
              check (pi.Packet.src = ri.Packet.src);
              check (pi.Packet.dst = ri.Packet.dst);
              check (pi.Packet.inner_ecn = ri.Packet.inner_ecn);
              check (pi.Packet.seg = ri.Packet.seg)
            | _ -> check false);
            check (p.Packet.uid <> r.Packet.uid);
            check (not (List.exists (fun q -> q == p) !live));
            (* a recycled record is live again — releasing it now would be
               a first release, not a double one *)
            dead := List.filter (fun q -> not (q == p)) !dead;
            live := p :: !live
          end
          else if v land 1 = 1 && !dead <> [] then begin
            (* double release: already returned once, must be a no-op *)
            let before = (Packet_pool.stats ()).Packet_pool.pooled in
            Packet_pool.release (List.hd !dead);
            check ((Packet_pool.stats ()).Packet_pool.pooled = before)
          end
          else
            match !live with
            | [] -> ()
            | l ->
              let i = v mod List.length l in
              let p = List.nth l i in
              live := List.filteri (fun j _ -> j <> i) l;
              dead := p :: !dead;
              let st0 = Packet_pool.stats () in
              Packet_pool.release p;
              let st1 = Packet_pool.stats () in
              (* either pooled for reuse or dropped at the cap — never both,
                 never neither *)
              check
                (st1.Packet_pool.pooled = st0.Packet_pool.pooled + 1
                 && st1.Packet_pool.dropped = st0.Packet_pool.dropped
                || st1.Packet_pool.pooled = st0.Packet_pool.pooled
                   && st1.Packet_pool.dropped = st0.Packet_pool.dropped + 1))
        ops;
      !ok)

(* ---------------------------------- Link -------------------------- *)

let test_link_delivers_with_latency () =
  let sched = Scheduler.create () in
  let link =
    Link.create ~sched ~rate_bps:10e9 ~prop_delay:(Sim_time.us 5) ()
  in
  let arrived = ref Sim_time.zero in
  Link.set_sink link (fun _ -> arrived := Scheduler.now sched);
  let pkt = mk_data () in
  (* 1440B at 10G = 1.152us tx + 5us prop *)
  Link.send link pkt;
  Scheduler.run sched;
  check_int "arrival time" 6_152 (Sim_time.to_ns !arrived)

let test_link_serializes () =
  let sched = Scheduler.create () in
  let link = Link.create ~sched ~rate_bps:10e9 ~prop_delay:Sim_time.zero_span () in
  let arrivals = ref [] in
  Link.set_sink link (fun p -> arrivals := (p.Packet.uid, Sim_time.to_ns (Scheduler.now sched)) :: !arrivals);
  let a = mk_data () and b = mk_data () in
  Link.send link a;
  Link.send link b;
  Scheduler.run sched;
  match List.rev !arrivals with
  | [ (ua, ta); (ub, tb) ] ->
    check_int "first" a.Packet.uid ua;
    check_int "second" b.Packet.uid ub;
    check_bool "b after a by one tx time" true (tb - ta >= 1_152)
  | _ -> Alcotest.fail "expected two arrivals"

let test_link_down_drops () =
  let sched = Scheduler.create () in
  let link = Link.create ~sched ~rate_bps:10e9 ~prop_delay:Sim_time.zero_span () in
  let got = ref 0 in
  Link.set_sink link (fun _ -> incr got);
  Link.set_up link false;
  Link.send link (mk_data ());
  Scheduler.run sched;
  check_int "nothing delivered" 0 !got;
  check_int "down drop counted" 1 (Link.down_drops link);
  Link.set_up link true;
  Link.send link (mk_data ());
  Scheduler.run sched;
  check_int "delivered after restore" 1 !got

(* ------------------------- Topology and routing ------------------- *)

let small_leaf_spine () =
  Topology.leaf_spine ~leaves:2 ~spines:2 ~hosts_per_leaf:2 ~parallel:2
    ~host_rate_bps:10e9 ~fabric_rate_bps:20e9 ~host_delay:(Sim_time.us 2)
    ~fabric_delay:(Sim_time.us 2)

let test_leaf_spine_shape () =
  let ls = small_leaf_spine () in
  let topo = ls.Topology.topo in
  check_int "nodes: 4 hosts + 4 switches" 8 (Topology.node_count topo);
  (* 4 host links + 2 leaves x 2 spines x 2 parallel = 12 edges *)
  check_int "edges" 12 (List.length (Topology.edges topo));
  let leaf = ls.Topology.leaf_ids.(0) in
  check_int "leaf neighbors: 2 hosts + 2 spines" 4
    (List.length (Topology.live_neighbors topo leaf))

let test_routing_host_to_host () =
  let ls = small_leaf_spine () in
  let topo = ls.Topology.topo in
  let dst = ls.Topology.host_ids.(1).(0) in
  let nh = Routing.next_hops topo ~dst in
  let src_leaf = ls.Topology.leaf_ids.(0) in
  let hops = Hashtbl.find nh src_leaf in
  (* from the source leaf both spines are equal-cost next hops *)
  check_int "two spine next-hops" 2 (List.length hops);
  let src_host = ls.Topology.host_ids.(0).(0) in
  check_int "host goes to its leaf" 1 (List.length (Hashtbl.find nh src_host))

let test_routing_avoids_failed () =
  let ls = small_leaf_spine () in
  let topo = ls.Topology.topo in
  let l2 = ls.Topology.leaf_ids.(1) and s2 = ls.Topology.spine_ids.(1) in
  (* fail BOTH parallel links l2-s2: s2 must vanish from next hops toward
     hosts behind l2 *)
  (match Topology.find_edge topo ~a:l2 ~b:s2 ~bundle_index:0 with
  | Some e -> Topology.fail_edge topo e
  | None -> Alcotest.fail "edge missing");
  (match Topology.find_edge topo ~a:l2 ~b:s2 ~bundle_index:1 with
  | Some e -> Topology.fail_edge topo e
  | None -> Alcotest.fail "edge missing");
  let dst = ls.Topology.host_ids.(1).(0) in
  let nh = Routing.next_hops topo ~dst in
  let hops = Hashtbl.find nh ls.Topology.leaf_ids.(0) in
  check_int "only one spine remains" 1 (List.length hops);
  check_int "it is s1" ls.Topology.spine_ids.(0) (List.hd hops)

let test_no_routing_through_hosts () =
  (* two hosts on one leaf: the path between them must be via the leaf,
     never via another host *)
  let ls = small_leaf_spine () in
  let topo = ls.Topology.topo in
  let dst = ls.Topology.host_ids.(0).(0) in
  let nh = Routing.next_hops topo ~dst in
  let other_host = ls.Topology.host_ids.(0).(1) in
  let hops = Hashtbl.find nh other_host in
  Alcotest.(check (list int)) "via leaf" [ ls.Topology.leaf_ids.(0) ] hops

(* --------------------------------- Fabric ------------------------- *)

let build_fabric ?(config = Fabric.default_config) () =
  let sched = Scheduler.create () in
  let ls = small_leaf_spine () in
  let fabric = Fabric.create ~sched ~config ls.Topology.topo in
  Fabric.program_routes fabric;
  (sched, ls, fabric)

let test_fabric_end_to_end () =
  let sched, ls, fabric = build_fabric () in
  let src = Fabric.host_by_addr fabric (Addr.of_int ls.Topology.host_ids.(0).(0)) in
  let dst = Fabric.host_by_addr fabric (Addr.of_int ls.Topology.host_ids.(1).(1)) in
  let got = ref 0 in
  Host.set_handler dst (fun _ -> incr got);
  for _ = 1 to 10 do
    Host.send src (mk_data ~src:(Host.id src) ~dst:(Host.id dst) ())
  done;
  Scheduler.run sched;
  check_int "all delivered" 10 !got

let test_fabric_ecmp_spreads_encap_ports () =
  let sched, ls, fabric = build_fabric () in
  let src = Fabric.host_by_addr fabric (Addr.of_int ls.Topology.host_ids.(0).(0)) in
  let dst = Fabric.host_by_addr fabric (Addr.of_int ls.Topology.host_ids.(1).(0)) in
  let got = ref 0 in
  Host.set_handler dst (fun _ -> incr got);
  for port = 50000 to 50199 do
    let pkt = mk_data ~src:(Host.id src) ~dst:(Host.id dst) () in
    Host.send src (encapsulate ~src_port:port pkt ~src:(Host.id src) ~dst:(Host.id dst))
  done;
  Scheduler.run sched;
  check_int "all delivered" 200 !got;
  (* both spines should have carried traffic *)
  Array.iter
    (fun sw ->
      if Switch.level sw = Switch.Spine then
        check_bool "spine used" true (Switch.rx_packets sw > 20))
    (Fabric.switches fabric)

let test_fabric_failure_reconvergence () =
  let sched, ls, fabric = build_fabric () in
  let topo = ls.Topology.topo in
  let l2 = ls.Topology.leaf_ids.(1) and s2 = ls.Topology.spine_ids.(1) in
  let edge =
    match Topology.find_edge topo ~a:l2 ~b:s2 ~bundle_index:1 with
    | Some e -> e
    | None -> Alcotest.fail "edge missing"
  in
  Fabric.fail_edge fabric edge;
  let src = Fabric.host_by_addr fabric (Addr.of_int ls.Topology.host_ids.(0).(0)) in
  let dst = Fabric.host_by_addr fabric (Addr.of_int ls.Topology.host_ids.(1).(0)) in
  let got = ref 0 in
  Host.set_handler dst (fun _ -> incr got);
  for port = 50000 to 50099 do
    let pkt = mk_data ~src:(Host.id src) ~dst:(Host.id dst) () in
    Host.send src (encapsulate ~src_port:port pkt ~src:(Host.id src) ~dst:(Host.id dst))
  done;
  Scheduler.run sched;
  (* no black hole: every packet still arrives over the remaining links *)
  check_int "all delivered after failure" 100 !got;
  Fabric.restore_edge fabric edge;
  for port = 51000 to 51099 do
    let pkt = mk_data ~src:(Host.id src) ~dst:(Host.id dst) () in
    Host.send src (encapsulate ~src_port:port pkt ~src:(Host.id src) ~dst:(Host.id dst))
  done;
  Scheduler.run sched;
  check_int "restored" 200 !got

let test_switch_ttl_expiry_answers_probe () =
  let sched, ls, fabric = build_fabric () in
  let src = Fabric.host_by_addr fabric (Addr.of_int ls.Topology.host_ids.(0).(0)) in
  let dst_id = ls.Topology.host_ids.(1).(0) in
  let replies = ref [] in
  Host.set_handler src (fun pkt ->
      match pkt.Packet.payload with
      | Packet.Probe_reply r -> replies := r :: !replies
      | _ -> ());
  let probe ttl =
    let pkt =
      Packet.make ~ttl ~size:64
        (Packet.Probe
           {
             Packet.probe_id = ttl;
             probe_src = Host.addr src;
             probe_dst = Addr.of_int dst_id;
             probe_port = 50000;
           })
    in
    Host.send src (encapsulate ~src_port:50000 pkt ~src:(Host.id src) ~dst:dst_id)
  in
  probe 1;
  probe 2;
  probe 3;
  Scheduler.run sched;
  check_int "one reply per expired probe" 3 (List.length !replies);
  let hops =
    List.filter_map (fun r -> r.Packet.reply_hop) !replies
    |> List.map (fun h -> h.Packet.hop_node)
    |> List.sort_uniq compare
  in
  (* ttl 1 dies at the source leaf, 2 at a spine, 3 at the remote leaf *)
  check_int "three distinct hops" 3 (List.length hops)

let test_fabric_ecn_threshold_update () =
  let _, _, fabric = build_fabric () in
  Fabric.set_ecn_threshold fabric 5;
  List.iter
    (fun link ->
      ignore link)
    (Fabric.all_links fabric);
  (* behavioural check: a queue marks above the new threshold *)
  let link = List.hd (Fabric.all_links fabric) in
  let q = Link.queue link in
  for _ = 1 to 10 do
    let p = mk_data () in
    p.Packet.ecn <- Packet.Ect;
    ignore (Pkt_queue.enqueue q p)
  done;
  check_bool "marks with new threshold" true ((Pkt_queue.stats q).Pkt_queue.marked >= 4)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "netsim"
    [
      ( "packet",
        [
          Alcotest.test_case "sizes" `Quick test_packet_sizes;
          Alcotest.test_case "route dst" `Quick test_packet_route_dst;
          Alcotest.test_case "uids" `Quick test_packet_uids_unique;
          Alcotest.test_case "flow key" `Quick test_flow_key_stability;
          qc prop_flow_key_matches_tuple_hash;
        ] );
      ( "ecmp_hash",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "spreads over ports" `Quick test_hash_spreads_ports;
          qc prop_hash_in_range;
        ] );
      ( "dre",
        [
          Alcotest.test_case "tracks rate" `Quick test_dre_tracks_rate;
          Alcotest.test_case "decays idle" `Quick test_dre_decays_when_idle;
        ] );
      ( "pkt_queue",
        [
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "drop tail" `Quick test_queue_drop_tail;
          Alcotest.test_case "ecn marking" `Quick test_queue_ecn_marking;
          Alcotest.test_case "non-ect unmarked" `Quick test_queue_no_mark_not_ect;
          Alcotest.test_case "drop accounting" `Quick test_queue_drop_accounting;
        ] );
      ( "packet_pool",
        [
          Alcotest.test_case "recycles released packets" `Quick test_pool_recycles;
          Alcotest.test_case "double release ignored" `Quick
            test_pool_double_release_ignored;
          qc prop_pool_model;
        ] );
      ( "link",
        [
          Alcotest.test_case "latency" `Quick test_link_delivers_with_latency;
          Alcotest.test_case "serialization" `Quick test_link_serializes;
          Alcotest.test_case "down drops" `Quick test_link_down_drops;
        ] );
      ( "topology+routing",
        [
          Alcotest.test_case "leaf-spine shape" `Quick test_leaf_spine_shape;
          Alcotest.test_case "host-to-host next hops" `Quick test_routing_host_to_host;
          Alcotest.test_case "avoids failed links" `Quick test_routing_avoids_failed;
          Alcotest.test_case "never via hosts" `Quick test_no_routing_through_hosts;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "end to end" `Quick test_fabric_end_to_end;
          Alcotest.test_case "ecmp spreads ports" `Quick test_fabric_ecmp_spreads_encap_ports;
          Alcotest.test_case "failure reconvergence" `Quick test_fabric_failure_reconvergence;
          Alcotest.test_case "ttl expiry probes" `Quick test_switch_ttl_expiry_answers_probe;
          Alcotest.test_case "ecn threshold update" `Quick test_fabric_ecn_threshold_update;
        ] );
    ]
