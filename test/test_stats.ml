(* Unit and property tests for the stats library. *)

open Stats

let feq = Alcotest.(check (float 1e-9))
let feq_loose eps = Alcotest.(check (float eps))

(* -------------------------------- Summary ------------------------- *)

let test_summary_basics () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  feq "mean" 2.5 (Summary.mean s);
  feq "total" 10.0 (Summary.total s);
  feq "min" 1.0 (Summary.min_value s);
  feq "max" 4.0 (Summary.max_value s);
  Alcotest.(check int) "count" 4 (Summary.count s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Summary.mean s));
  Alcotest.(check bool) "percentile is nan" true (Float.is_nan (Summary.percentile s 50.0))

let test_summary_percentiles () =
  let s = Summary.create () in
  for i = 1 to 100 do
    Summary.add s (float_of_int i)
  done;
  feq_loose 1e-6 "median" 50.5 (Summary.median s);
  feq_loose 1e-6 "p99" 99.01 (Summary.percentile s 99.0);
  feq_loose 1e-6 "p0 is min" 1.0 (Summary.percentile s 0.0);
  feq_loose 1e-6 "p100 is max" 100.0 (Summary.percentile s 100.0)

let test_summary_add_after_percentile () =
  (* adding after a percentile query must keep results correct *)
  let s = Summary.create () in
  List.iter (Summary.add s) [ 3.0; 1.0 ];
  ignore (Summary.median s);
  Summary.add s 2.0;
  feq_loose 1e-6 "median updated" 2.0 (Summary.median s)

let test_summary_stddev () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  feq_loose 1e-9 "known stddev" 2.0 (Summary.stddev s)

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () in
  List.iter (Summary.add a) [ 1.0; 2.0 ];
  List.iter (Summary.add b) [ 3.0; 4.0 ];
  let m = Summary.merge a b in
  Alcotest.(check int) "count" 4 (Summary.count m);
  feq "mean" 2.5 (Summary.mean m)

let prop_summary_percentile_bounds =
  QCheck.Test.make ~name:"percentiles lie within [min,max]" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 100) (float_bound_exclusive 1000.0))
        (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let s = Summary.create () in
      List.iter (Summary.add s) xs;
      let v = Summary.percentile s p in
      v >= Summary.min_value s -. 1e-9 && v <= Summary.max_value s +. 1e-9)

let prop_summary_mean_consistent =
  QCheck.Test.make ~name:"mean equals sum/count" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Summary.create () in
      List.iter (Summary.add s) xs;
      let expected = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      abs_float (Summary.mean s -. expected) < 1e-6)

(* ---------------------------------- Cdf --------------------------- *)

let test_cdf_of_knots_eval () =
  let c = Cdf.of_knots [ (0.0, 0.0); (10.0, 0.5); (20.0, 1.0) ] in
  feq "below" 0.0 (Cdf.eval c (-1.0));
  feq "at knot" 0.5 (Cdf.eval c 10.0);
  feq "interpolated" 0.25 (Cdf.eval c 5.0);
  feq "above" 1.0 (Cdf.eval c 25.0)

let test_cdf_inverse_roundtrip () =
  let c = Cdf.of_knots [ (0.0, 0.0); (10.0, 0.5); (20.0, 1.0) ] in
  feq "inverse 0.25" 5.0 (Cdf.inverse c 0.25);
  feq "inverse 1.0" 20.0 (Cdf.inverse c 1.0);
  feq "inverse 0.0" 0.0 (Cdf.inverse c 0.0)

let test_cdf_mean () =
  (* uniform on [0, 10]: mean 5 *)
  let c = Cdf.of_knots [ (0.0, 0.0); (10.0, 1.0) ] in
  feq_loose 1e-9 "uniform mean" 5.0 (Cdf.mean c)

let test_cdf_of_samples () =
  let c = Cdf.of_samples [| 3.0; 1.0; 2.0 |] in
  feq_loose 1e-9 "p(x<=1)" (1.0 /. 3.0) (Cdf.eval c 1.0);
  feq_loose 1e-9 "p(x<=3)" 1.0 (Cdf.eval c 3.0)

let test_cdf_malformed () =
  Alcotest.check_raises "decreasing x"
    (Invalid_argument "Cdf.of_knots: knots must be non-decreasing") (fun () ->
      ignore (Cdf.of_knots [ (1.0, 0.0); (0.5, 1.0) ]))

let prop_cdf_eval_monotone =
  QCheck.Test.make ~name:"cdf eval is monotone" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 2 20) (float_bound_exclusive 100.0))
        (pair (float_bound_exclusive 120.0) (float_bound_exclusive 120.0)))
    (fun (xs, (a, b)) ->
      let xs = List.sort_uniq compare xs in
      QCheck.assume (List.length xs >= 2);
      let n = List.length xs in
      let knots = List.mapi (fun i x -> (x, float_of_int (i + 1) /. float_of_int n)) xs in
      let knots = (List.hd xs -. 1.0, 0.0) :: knots in
      let c = Cdf.of_knots knots in
      let lo = min a b and hi = max a b in
      Cdf.eval c lo <= Cdf.eval c hi +. 1e-9)

let prop_cdf_inverse_in_support =
  QCheck.Test.make ~name:"inverse stays within support" ~count:200
    QCheck.(float_bound_inclusive 1.0)
    (fun p ->
      let c = Cdf.of_knots [ (1.0, 0.0); (5.0, 0.4); (100.0, 1.0) ] in
      let x = Cdf.inverse c p in
      x >= 1.0 && x <= 100.0)

(* ------------------------------- Histogram ------------------------ *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add h 0.5;
  Histogram.add h 5.5;
  Histogram.add h 9.9;
  Histogram.add h 42.0 (* clamped to last bin *);
  feq "bin0" 1.0 (Histogram.bin_value h 0);
  feq "bin5" 1.0 (Histogram.bin_value h 5);
  feq "bin9" 2.0 (Histogram.bin_value h 9);
  feq "total" 4.0 (Histogram.count h);
  feq_loose 1e-9 "fraction above 5" 0.75 (Histogram.fraction_above h 5.0)

let test_histogram_weights () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add ~weight:3.0 h 0.1;
  Histogram.add ~weight:1.0 h 0.9;
  feq "weighted" 3.0 (Histogram.bin_value h 0);
  feq_loose 1e-9 "fraction" 0.25 (Histogram.fraction_above h 0.5)

let test_histogram_invalid () =
  Alcotest.check_raises "hi<=lo" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

(* --------------------------------- Table -------------------------- *)

(* --------------------------- Quantile_sketch ---------------------- *)

(* true rank of [v] in [values]: how many samples are <= v *)
let rank_of values v = Array.fold_left (fun n x -> if x <= v then n + 1 else n) 0 values

(* |true_rank(quantile q) - q*n| must stay within the documented
   guarantee [rank_error * n] (+1 for the ceil of the target rank) *)
let check_rank_bound ~name sk values qs =
  let n = Array.length values in
  let slack = (Quantile_sketch.rank_error sk *. float_of_int n) +. 1.0 in
  List.iter
    (fun q ->
      let v = Quantile_sketch.quantile sk q in
      let err = abs_float (float_of_int (rank_of values v) -. (q *. float_of_int n)) in
      if err > slack then
        Alcotest.failf "%s: q=%.3f rank error %.0f > allowed %.0f" name q err slack)
    qs

let quantile_probes = [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_sketch_exact_small () =
  (* below the compression threshold every leaf survives, so quantiles
     are exact order statistics *)
  let sk = Quantile_sketch.create () in
  let values = Array.init 100 (fun i -> (i * 17) mod 101) in
  Array.iter (Quantile_sketch.add sk) values;
  Alcotest.(check int) "count" 100 (Quantile_sketch.count sk);
  let sorted = Array.copy values in
  Array.sort compare sorted;
  Alcotest.(check int) "median is an order statistic" sorted.(49)
    (Quantile_sketch.quantile sk 0.5)

let test_sketch_rank_error_bound () =
  (* a small k forces heavy compression; three shapes of stream *)
  let shapes =
    [
      ("uniform", Array.init 50_000 (fun i -> (i * 9973) mod 1_000_000));
      ("skewed", Array.init 50_000 (fun i -> i * i mod 16_777_216));
      ("clustered", Array.init 50_000 (fun i -> 1000 * (i mod 7)));
    ]
  in
  List.iter
    (fun (name, values) ->
      let sk = Quantile_sketch.create ~k:64 ~u_bits:24 () in
      Array.iter (Quantile_sketch.add sk) values;
      check_rank_bound ~name sk values quantile_probes)
    shapes

let test_sketch_merge_union () =
  (* merging shard sketches must answer for the union within the same
     guarantee — the PDES per-shard sink contract *)
  let a = Quantile_sketch.create ~k:64 ~u_bits:24 () in
  let b = Quantile_sketch.create ~k:64 ~u_bits:24 () in
  let va = Array.init 20_000 (fun i -> (i * 7919) mod 500_000) in
  let vb = Array.init 30_000 (fun i -> 500_000 + ((i * 104729) mod 500_000)) in
  Array.iter (Quantile_sketch.add a) va;
  Array.iter (Quantile_sketch.add b) vb;
  let m = Quantile_sketch.merge a b in
  Alcotest.(check int) "merged count" 50_000 (Quantile_sketch.count m);
  check_rank_bound ~name:"merge" m (Array.append va vb) quantile_probes

let test_sketch_deterministic () =
  let build () =
    let sk = Quantile_sketch.create ~k:64 ~u_bits:24 () in
    for i = 0 to 9_999 do
      Quantile_sketch.add sk ((i * 31) mod 65_536)
    done;
    List.map (Quantile_sketch.quantile sk) quantile_probes
  in
  Alcotest.(check (list int)) "two builds agree" (build ()) (build ())

let test_sketch_node_bound () =
  let k = 64 in
  let sk = Quantile_sketch.create ~k ~u_bits:24 () in
  for i = 0 to 99_999 do
    Quantile_sketch.add sk ((i * 2654435761) land 0xFFFFFF)
  done;
  Alcotest.(check bool) "nodes within 3k+1" true
    (Quantile_sketch.nodes sk <= (3 * k) + 1)

let prop_sketch_rank_error =
  QCheck.Test.make ~name:"sketch rank error within guarantee" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 2_000) (int_bound 4_095))
    (fun values ->
      let values = Array.of_list values in
      let sk = Quantile_sketch.create ~k:16 ~u_bits:12 () in
      Array.iter (Quantile_sketch.add sk) values;
      let n = Array.length values in
      let slack = (Quantile_sketch.rank_error sk *. float_of_int n) +. 1.0 in
      List.for_all
        (fun q ->
          let v = Quantile_sketch.quantile sk q in
          abs_float (float_of_int (rank_of values v) -. (q *. float_of_int n))
          <= slack)
        quantile_probes)

let test_table_render () =
  let t = Table.create ~header:[ "load"; "ECMP"; "Clove" ] in
  Table.add_float_row t ~label:"50" [ 1.5; 0.75 ];
  Table.add_float_row t ~label:"70" [ nan; 2.0 ];
  let s = Table.to_string t in
  Alcotest.(check bool) "header present" true
    (String.length s > 0 && String.sub s 0 4 = "load");
  Alcotest.(check bool) "nan renders as dash" true
    (String.exists (fun c -> c = '-') s)

let test_table_csv () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  Alcotest.(check string) "csv" "a,b\n1,2\n" (Table.csv t)

let test_table_width_mismatch () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basics" `Quick test_summary_basics;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "percentiles" `Quick test_summary_percentiles;
          Alcotest.test_case "add after percentile" `Quick test_summary_add_after_percentile;
          Alcotest.test_case "stddev" `Quick test_summary_stddev;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          qc prop_summary_percentile_bounds;
          qc prop_summary_mean_consistent;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "knots eval" `Quick test_cdf_of_knots_eval;
          Alcotest.test_case "inverse" `Quick test_cdf_inverse_roundtrip;
          Alcotest.test_case "mean" `Quick test_cdf_mean;
          Alcotest.test_case "of samples" `Quick test_cdf_of_samples;
          Alcotest.test_case "malformed" `Quick test_cdf_malformed;
          qc prop_cdf_eval_monotone;
          qc prop_cdf_inverse_in_support;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "weights" `Quick test_histogram_weights;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid;
        ] );
      ( "quantile_sketch",
        [
          Alcotest.test_case "exact when uncompressed" `Quick
            test_sketch_exact_small;
          Alcotest.test_case "rank error within bound" `Quick
            test_sketch_rank_error_bound;
          Alcotest.test_case "merge equals union" `Quick test_sketch_merge_union;
          Alcotest.test_case "deterministic" `Quick test_sketch_deterministic;
          Alcotest.test_case "node bound" `Quick test_sketch_node_bound;
          qc prop_sketch_rank_error;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        ] );
    ]
