(* Tests for clove-sema (the AST-level determinism and unit-safety
   analyzer) and for the schedule-perturbation sanitizer: the static and
   dynamic halves of the same guarantee, that a run is a function of its
   seed and nothing else. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qc = QCheck_alcotest.to_alcotest

module Perturb = Analysis.Perturb
module Audit = Analysis.Audit

open Experiments

(* --------------------------- static passes ------------------------- *)

(* Findings are path-sensitive (the time-boundary whitelist), so pretend
   the snippet lives in an ordinary component module. *)
let analyze ?(file = "lib/clove/snippet.ml") src = Sema.Rules.analyze_source ~file src

let count_rule rule fs =
  List.length (List.filter (fun f -> f.Sema.Rules.rule = rule) fs)

let one rule src = check_int rule 1 (count_rule rule (analyze src))
let none src = check_int "clean" 0 (List.length (analyze src))

let test_hashtbl_order () =
  one "sema-hashtbl-order"
    "let dump tbl b =\n\
    \  Hashtbl.iter (fun k v -> Buffer.add_string b (f k v)) tbl\n";
  one "sema-hashtbl-order"
    "let total tbl c = Hashtbl.fold (fun _ v () -> c := !c + v) tbl ()\n";
  one "sema-hashtbl-order"
    "let show tbl = Hashtbl.iter (fun k _ -> Printf.printf \"%d\" k) tbl\n";
  none "let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0\n";
  none "let dump tbl b =\n\
       \  Det.iter_sorted ~compare:Int.compare\n\
       \    (fun k v -> Buffer.add_string b (f k v)) tbl\n";
  none
    "(* log order is cosmetic -- lint: allow sema-hashtbl-order *)\n\
     let dump tbl b = Hashtbl.iter (fun k v -> Buffer.add_string b (f k v)) tbl\n"

let test_raw_random () =
  one "sema-raw-random" "let pick xs = List.nth xs (Random.int (len xs))\n";
  one "sema-raw-random" "let () = Random.self_init ()\n";
  none "let pick rng xs = List.nth xs (Rng.int rng (len xs))\n"

let test_wall_clock () =
  one "sema-wall-clock" "let t0 = Unix.gettimeofday ()\n";
  one "sema-wall-clock" "let t0 = Sys.time ()\n";
  none "let t0 = Scheduler.now sched\n";
  none
    "(* harness timing -- lint: allow sema-wall-clock *)\n\
     let t0 = Sys.time ()\n"

let test_adhoc_seed () =
  one "sema-adhoc-seed" "let rng = Rng.create 42\n";
  none "let rng = Rng.create seed\n";
  none "let rng = Rng.split_named parent \"letflow\"\n"

let test_fault_rng () =
  (* inside lib/faults/ any Rng.create is wrong, even a non-literal seed *)
  let in_faults = analyze ~file:"lib/faults/fault_engine.ml" in
  check_int "sema-fault-rng literal" 1
    (count_rule "sema-fault-rng" (in_faults "let rng = Rng.create 42\n"));
  check_int "sema-fault-rng variable" 1
    (count_rule "sema-fault-rng" (in_faults "let rng = Rng.create seed\n"));
  check_int "fault split_named clean" 0
    (List.length (in_faults "let rng = Rng.split_named parent \"flap\"\n"));
  (* the literal-seed case reports as fault-rng there, not adhoc-seed *)
  check_int "no double report" 0
    (count_rule "sema-adhoc-seed" (in_faults "let rng = Rng.create 42\n"));
  (* outside lib/faults/ a non-literal seed stays clean *)
  none "let rng = Rng.create seed\n"

let test_wildcard_variant () =
  one "sema-wildcard-variant"
    "let f p = match p with Packet.Probe _ -> true | _ -> false\n";
  one "sema-wildcard-variant" "let f = function Packet.Fb_ecn _ -> 1 | _ -> 0\n";
  (* exhaustive protocol matches and wildcards over other types are fine *)
  none "let f e = match e with Packet.Not_ect -> 0 | Ect -> 1 | Ce -> 2\n";
  none "let f o = match o with Some _ -> true | _ -> false\n"

let test_time_boundary () =
  one "sema-time-boundary" "let g = Sim_time.span_ns (Sim_time.us 500)\n";
  one "sema-time-boundary" "let t = Sim_time.of_ns 5\n";
  (* the typed algebra is always fine *)
  none "let g = Sim_time.mul_span rtt 0.5\n";
  (* ... and raw conversions are fine inside the whitelist *)
  check_int "whitelisted" 0
    (List.length
       (analyze ~file:"lib/engine/event_queue.ml" "let t = Sim_time.of_ns 5\n"))

let test_unit_mix () =
  one "sema-unit-mix" "let x = flow_bytes + gap_ns\n";
  one "sema-unit-mix" "let x = deadline_us -. queue_pkts\n";
  none "let x = flow_bytes + hdr_bytes\n";
  none "let x = gap_ns + rtt_ns\n";
  none "let x = a + b\n"

let test_domain_parallel () =
  one "sema-domain-parallel" "let d = Domain.spawn (fun () -> work ())\n";
  one "sema-domain-parallel" "let m = Mutex.create ()\n";
  one "sema-domain-parallel" "let c = Atomic.fetch_and_add counter 1\n";
  one "sema-domain-parallel" "let () = Condition.broadcast cv\n";
  (* the parallel runtime itself is whitelisted *)
  check_int "domain_pool whitelisted" 0
    (List.length
       (analyze ~file:"lib/engine/domain_pool.ml"
          "let d = Domain.spawn (fun () -> work ())\nlet m = Mutex.create ()\n"));
  check_int "packet_pool whitelisted" 0
    (List.length
       (analyze ~file:"lib/netsim/packet_pool.ml"
          "let key = Domain.DLS.new_key (fun () -> fresh ())\n"));
  (* calls into the pool are not calls into Domain *)
  none "let results = Domain_pool.run job points\n";
  none
    "(* harness counter -- lint: allow sema-domain-parallel *)\n\
     let c = Atomic.fetch_and_add counter 1\n"

let test_parse_error () =
  let fs = analyze "let let let\n" in
  check_int "one finding" 1 (List.length fs);
  check_int "parse error" 1 (count_rule "sema-parse-error" fs)

let test_fixture_flagged () =
  (* cwd is test/ under [dune runtest] but the project root under
     [dune exec] *)
  let path =
    if Sys.file_exists "fixtures/order_dependent.ml" then
      "fixtures/order_dependent.ml"
    else "test/fixtures/order_dependent.ml"
  in
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let fs = Sema.Rules.analyze_source ~file:"test/fixtures/order_dependent.ml" src in
  List.iter
    (fun rule -> check_int rule 1 (count_rule rule fs))
    [
      "sema-hashtbl-order";
      "sema-raw-random";
      "sema-wall-clock";
      "sema-adhoc-seed";
      "sema-wildcard-variant";
      "sema-time-boundary";
      "sema-unit-mix";
    ];
  List.iter
    (fun f ->
      check_bool "finding names the fixture" true
        (f.Sema.Rules.file = "test/fixtures/order_dependent.ml");
      check_bool "finding carries a line" true (f.Sema.Rules.line > 0))
    fs

let test_module_graph () =
  let srcs =
    [
      ("lib/a/alpha.ml", "let go () = Beta.run (Beta.base + 1)\n");
      ("lib/b/beta.ml", "let base = 2\nlet run x = x + base\nlet dead = 0\n");
    ]
  in
  let infos = Sema.Rules.module_graph srcs in
  check_int "two modules" 2 (List.length infos);
  let alpha = List.find (fun i -> i.Sema.Rules.mi_module = "Alpha") infos in
  let beta = List.find (fun i -> i.Sema.Rules.mi_module = "Beta") infos in
  check_bool "alpha -> beta" true (alpha.Sema.Rules.mi_deps = [ "Beta" ]);
  check_bool "beta has no deps" true (beta.Sema.Rules.mi_deps = []);
  let unused =
    Sema.Rules.unused_exports ~ml_sources:srcs
      ~mli_sources:
        [ ("lib/b/beta.mli", "val base : int\nval run : int -> int\nval dead : int\n") ]
  in
  check_bool "only the dead export is reported" true
    (unused = [ ("Beta", "dead", "lib/b/beta.mli") ])

(* -------------------- dynamic sanitizer: basics -------------------- *)

let test_perturbed_size () =
  Perturb.reset ();
  check_int "identity at salt 0" 16 (Perturb.perturbed_size 16);
  Perturb.set_tbl_size_salt 3;
  check_bool "salt enlarges" true (Perturb.perturbed_size 16 > 16);
  check_bool "deterministic" true
    (Perturb.perturbed_size 16 = Perturb.perturbed_size 16);
  Perturb.reset ();
  check_int "reset restores" 16 (Perturb.perturbed_size 16)

(* A correct run: observable order fixed by Det.iter_sorted, so the
   digest survives every perturbation. *)
let sorted_run () =
  let tbl = Det.create 16 in
  for i = 0 to 19 do
    Hashtbl.replace tbl (i * 17) i
  done;
  let b = Buffer.create 128 in
  Det.iter_sorted ~compare:Int.compare
    (fun k v -> Buffer.add_string b (Printf.sprintf "%d=%d;" k v))
    tbl;
  Buffer.contents b

(* The fixture's dump_weights pattern: digest taken in bucket order, so
   a sizing salt reshuffles it. *)
let bucket_order_run () =
  let tbl = Det.create 16 in
  for i = 0 to 19 do
    Hashtbl.replace tbl (i * 17) i
  done;
  let b = Buffer.create 128 in
  Hashtbl.iter (fun k v -> Buffer.add_string b (Printf.sprintf "%d=%d;" k v)) tbl;
  Buffer.contents b

(* Two same-timestamp events whose firing order is observable: flipping
   the tie-break knob flips the digest. *)
let tie_order_run () =
  let sched = Scheduler.create () in
  let b = Buffer.create 4 in
  let time = Sim_time.of_span (Sim_time.us 5) in
  let (_ : Scheduler.handle) =
    Scheduler.schedule_at sched ~time (fun () -> Buffer.add_char b 'a')
  in
  let (_ : Scheduler.handle) =
    Scheduler.schedule_at sched ~time (fun () -> Buffer.add_char b 'b')
  in
  Scheduler.run sched;
  Buffer.contents b

let test_sanitizer_accepts_sorted () =
  Audit.reset ();
  Audit.set_enabled true;
  let baseline, outcomes =
    Perturb.check_schedule_stability ~label:"sorted" ~run:sorted_run ()
  in
  check_bool "digest non-empty" true (String.length baseline > 0);
  check_int "all perturbations run" 3 (List.length outcomes);
  check_bool "stable" true (Perturb.stable outcomes);
  check_bool "no violations" true (Audit.ok ());
  Audit.set_enabled false;
  Audit.reset ()

let test_sanitizer_catches_bucket_order () =
  Audit.reset ();
  Audit.set_enabled true;
  let _, outcomes =
    Perturb.check_schedule_stability ~label:"bucket-order" ~run:bucket_order_run
      ()
  in
  check_bool "unstable" false (Perturb.stable outcomes);
  let salted =
    List.filter
      (fun o -> not o.Perturb.matches)
      (List.filter (fun o -> o.Perturb.perturbation <> "tiebreak-lifo") outcomes)
  in
  check_bool "a sizing salt exposed it" true (salted <> []);
  check_bool "violations recorded" true (Audit.violation_count () > 0);
  Audit.set_enabled false;
  Audit.reset ()

let test_sanitizer_catches_tie_order () =
  Audit.reset ();
  Audit.set_enabled true;
  let _, outcomes =
    Perturb.check_schedule_stability ~label:"tie-order" ~run:tie_order_run ()
  in
  check_bool "unstable" false (Perturb.stable outcomes);
  let lifo =
    List.find (fun o -> o.Perturb.perturbation = "tiebreak-lifo") outcomes
  in
  check_bool "lifo flipped the digest" false lifo.Perturb.matches;
  Audit.set_enabled false;
  Audit.reset ()

(* -------------- property: insertion order never leaks -------------- *)

let dedup_keys bindings =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    bindings

let shuffle rng xs =
  List.map (fun x -> (Rng.int rng 1_000_000, x)) xs
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let digest_of bindings =
  let tbl = Det.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bindings;
  Det.fold_sorted ~compare:Int.compare
    (fun k v acc -> Printf.sprintf "%s(%d,%d)" acc k v)
    tbl ""

let prop_insertion_order =
  QCheck.Test.make
    ~name:"sorted digests invariant to insertion order and perturbation"
    ~count:50
    QCheck.(pair (small_list (pair small_nat small_nat)) small_nat)
    (fun (bindings, mix) ->
      let bindings = dedup_keys bindings in
      let baseline = digest_of bindings in
      let shuffled = shuffle (Rng.create (mix + 1)) bindings in
      List.for_all
        (fun (_, tb, salt) ->
          Perturb.with_settings ~tb ~salt (fun () ->
              String.equal (digest_of shuffled) baseline))
        (("unperturbed", Perturb.Fifo, 0) :: Perturb.standard_perturbations))

(* ------------- end-to-end: a full scenario run is stable ----------- *)

let scenario_digest () =
  let params = { Scenario.default_params with Scenario.seed = 11 } in
  let fct =
    Sweep.websearch_run ~scheme:Scenario.S_clove_ecn ~params ~load:0.4
      ~jobs_per_conn:8
  in
  Digest.to_hex (Digest.string (Workload.Fct_stats.canonical_dump fct))

let test_scenario_stable_under_perturbation () =
  Audit.reset ();
  Audit.set_enabled true;
  let baseline, outcomes =
    Perturb.check_schedule_stability ~label:"websearch/clove-ecn"
      ~run:scenario_digest ()
  in
  check_bool
    (Format.asprintf "identical digests: %a" Perturb.pp_outcomes
       (baseline, outcomes))
    true
    (Perturb.stable outcomes);
  check_bool "no violations" true (Audit.ok ());
  Audit.set_enabled false;
  Audit.reset ()

let () =
  Alcotest.run "sema"
    [
      ( "static-passes",
        [
          Alcotest.test_case "hashtbl-order" `Quick test_hashtbl_order;
          Alcotest.test_case "raw-random" `Quick test_raw_random;
          Alcotest.test_case "wall-clock" `Quick test_wall_clock;
          Alcotest.test_case "adhoc-seed" `Quick test_adhoc_seed;
          Alcotest.test_case "fault-rng" `Quick test_fault_rng;
          Alcotest.test_case "wildcard-variant" `Quick test_wildcard_variant;
          Alcotest.test_case "time-boundary" `Quick test_time_boundary;
          Alcotest.test_case "unit-mix" `Quick test_unit_mix;
          Alcotest.test_case "domain-parallel" `Quick test_domain_parallel;
          Alcotest.test_case "parse-error" `Quick test_parse_error;
          Alcotest.test_case "fixture flagged" `Quick test_fixture_flagged;
          Alcotest.test_case "module graph + unused exports" `Quick
            test_module_graph;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "perturbed sizes" `Quick test_perturbed_size;
          Alcotest.test_case "sorted iteration accepted" `Quick
            test_sanitizer_accepts_sorted;
          Alcotest.test_case "bucket order caught" `Quick
            test_sanitizer_catches_bucket_order;
          Alcotest.test_case "tie order caught" `Quick
            test_sanitizer_catches_tie_order;
          qc prop_insertion_order;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "scenario digest survives perturbation" `Quick
            test_scenario_stable_under_perturbation;
        ] );
    ]
