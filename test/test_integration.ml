(* Integration tests: full scenarios exercising the public API end to end,
   checking the paper's qualitative claims at small scale and cross-module
   invariants (byte conservation, no stalls, determinism). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

open Experiments

let small_run ?(asymmetric = false) ?(seed = 1) ?(load = 0.5) ?(jobs = 30) scheme =
  let params = { Scenario.default_params with Scenario.asymmetric; seed } in
  Sweep.websearch_run ~scheme ~params ~load ~jobs_per_conn:jobs

(* ------------------------------ determinism ----------------------- *)

let test_runs_are_deterministic () =
  let a = small_run ~seed:7 Scenario.S_clove_ecn in
  let b = small_run ~seed:7 Scenario.S_clove_ecn in
  Alcotest.(check (float 1e-12))
    "same seed, same avg FCT" (Workload.Fct_stats.avg a) (Workload.Fct_stats.avg b);
  Alcotest.(check (float 1e-12))
    "same p99" (Workload.Fct_stats.percentile a 99.0) (Workload.Fct_stats.percentile b 99.0)

let test_seeds_differ () =
  let a = small_run ~seed:7 Scenario.S_clove_ecn in
  let b = small_run ~seed:8 Scenario.S_clove_ecn in
  check_bool "different seeds differ" true
    (Workload.Fct_stats.avg a <> Workload.Fct_stats.avg b)

(* -------------------------- byte conservation --------------------- *)

let test_byte_conservation () =
  (* every job's bytes are delivered exactly once to the receiver stream:
     sum of receiver-delivered bytes equals sum of job sizes *)
  let params = { Scenario.default_params with Scenario.seed = 3 } in
  let scn = Scenario.build ~scheme:Scenario.S_clove_ecn params in
  let sched = Scenario.sched scn in
  let client = (Scenario.clients scn).(0) in
  let server = (Scenario.servers scn).(0) in
  let submit = Scenario.connect scn ~src:client ~dst:server in
  let sizes = [ 5_000; 123_456; 999; 70_000 ] in
  let total = List.fold_left ( + ) 0 sizes in
  let done_count = ref 0 in
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.ms 25) (fun () ->
         List.iter (fun b -> submit ~bytes:b ~on_complete:(fun () -> incr done_count)) sizes));
  Scheduler.run ~until:(Sim_time.of_ns 300_000_000) sched;
  check_int "all jobs done" (List.length sizes) !done_count;
  (* receiver-side delivered bytes: find via the stack's registered
     receiver being opaque, we rely on sender-side: all bytes acked *)
  let senders = Transport.Stack.senders (Scenario.stack scn client) in
  let acked = List.fold_left (fun acc s -> acc + Transport.Tcp.snd_una s) 0 senders in
  check_int "every byte acked exactly once" total acked;
  Scenario.quiesce scn

(* --------------------- paper claims at small scale ---------------- *)

(* directional claims are checked on the mean over a few seeds, as in the
   paper's methodology: a single realization at this scale can land in a
   regime where the degraded link is barely exercised *)
let claim_seeds = [ 1; 2; 3 ]

let seed_mean f =
  List.fold_left (fun acc seed -> acc +. f seed) 0.0 claim_seeds
  /. float_of_int (List.length claim_seeds)

let test_clove_beats_ecmp_under_asymmetry () =
  (* the headline: congestion-aware edge LB clearly beats ECMP when a
     fabric link is down and load is high *)
  let avg scheme =
    seed_mean (fun seed ->
        Workload.Fct_stats.avg (small_run ~asymmetric:true ~seed ~load:0.7 ~jobs:120 scheme))
  in
  let ecmp = avg Scenario.S_ecmp in
  let clove = avg Scenario.S_clove_ecn in
  check_bool
    (Printf.sprintf "clove (%.4fs) < ecmp (%.4fs)" clove ecmp)
    true (clove < ecmp)

let test_edge_flowlet_between_ecmp_and_clove () =
  let avg scheme =
    seed_mean (fun seed ->
        Workload.Fct_stats.avg (small_run ~asymmetric:true ~seed ~load:0.7 ~jobs:120 scheme))
  in
  let ecmp = avg Scenario.S_ecmp in
  let ef = avg Scenario.S_edge_flowlet in
  check_bool
    (Printf.sprintf "edge-flowlet (%.4fs) improves on ecmp (%.4fs)" ef ecmp)
    true (ef < ecmp)

let test_low_load_schemes_close () =
  (* at 20% load all schemes should be within a small factor of each other
     (paper: "at lower loads, the performance ... is nearly the same") *)
  let avg scheme = Workload.Fct_stats.avg (small_run ~load:0.2 ~jobs:60 scheme) in
  let values =
    List.map avg Scenario.[ S_ecmp; S_edge_flowlet; S_clove_ecn; S_presto ]
  in
  let lo = List.fold_left Float.min infinity values in
  let hi = List.fold_left Float.max 0.0 values in
  check_bool
    (Printf.sprintf "spread %.4f..%.4f within 3x" lo hi)
    true (hi /. lo < 3.0)

let test_incast_mptcp_collapses () =
  (* Fig. 7's shape: at high fan-in MPTCP's goodput collapses relative to
     Clove-ECN *)
  let params =
    { Scenario.default_params with Scenario.hosts_per_leaf = 16; fabric_rate_bps = 40e9 }
  in
  let goodput scheme =
    Sweep.incast_point ~scheme ~params ~fanout:12
      ~total_bytes:(int_of_float (1e7 *. params.Scenario.size_scale))
      ~requests:6 ~seeds:[ 1 ]
  in
  let clove = goodput Scenario.S_clove_ecn in
  let mptcp = goodput Scenario.S_mptcp in
  check_bool
    (Printf.sprintf "clove %.2fG > mptcp %.2fG at fanout 12" (clove /. 1e9) (mptcp /. 1e9))
    true (clove > mptcp)

let test_no_stalls_at_high_load () =
  (* the full matrix at 80% load, asymmetric: every scheme must finish all
     jobs (no deadlock/black hole), exercising the whole system *)
  List.iter
    (fun scheme ->
      let fct = small_run ~asymmetric:true ~load:0.8 ~jobs:25 scheme in
      check_int
        (Scenario.scheme_name scheme ^ " all jobs complete")
        (8 * 25) (Workload.Fct_stats.count fct))
    Scenario.[ S_ecmp; S_edge_flowlet; S_clove_ecn; S_clove_int; S_presto; S_mptcp; S_conga ]

let test_flowlet_gap_sensitivity_direction () =
  (* Fig. 6's qualitative claim at 70-80% load: a tiny flowlet gap
     (per-packet spraying) is worse than the recommended 1 RTT gap *)
  let avg gap_mult =
    let rtt = Scenario.default_params.Scenario.rtt_estimate in
    seed_mean (fun seed ->
        let params =
          {
            Scenario.default_params with
            Scenario.asymmetric = true;
            flowlet_gap = Some (Sim_time.mul_span rtt gap_mult);
            seed;
          }
        in
        Workload.Fct_stats.avg
          (Sweep.websearch_run ~scheme:Scenario.S_clove_ecn ~params ~load:0.8
             ~jobs_per_conn:120))
  in
  let tiny = avg 0.2 in
  let good = avg 1.0 in
  check_bool
    (Printf.sprintf "gap 0.2RTT (%.4fs) worse than 1RTT (%.4fs)" tiny good)
    true (tiny > good)

(* --------------------------- vswitch counters --------------------- *)

let test_probe_overhead_bounded () =
  (* Section 4 scalability: probe traffic is periodic and small.  After a
     run, the probes sent by one vswitch are bounded by
     cycles x ports x ttls *)
  let params = { Scenario.default_params with Scenario.seed = 2 } in
  let scn = Scenario.build ~scheme:Scenario.S_clove_ecn params in
  let client = (Scenario.clients scn).(0) in
  let server = (Scenario.servers scn).(0) in
  let v = Scenario.vswitch scn client in
  Clove.Vswitch.add_destination v (Host.addr server);
  Scheduler.run
    ~until:(Sim_time.of_ns (Sim_time.span_ns (Sim_time.ms 600)))
    (Scenario.sched scn);
  (* two cycles (t=0 and t=500ms) with <= 36 ports x 8 ttls each; only
     probes whose ttl reaches the host are answered *)
  let stats = Clove.Vswitch.stats (Scenario.vswitch scn server) in
  check_bool "server answered some probes" true (stats.Clove.Vswitch.probes_answered > 0);
  check_bool "probe volume bounded" true
    (stats.Clove.Vswitch.probes_answered <= 2 * 36 * 8);
  Scenario.quiesce scn

let () =
  Alcotest.run "integration"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed same result" `Quick test_runs_are_deterministic;
          Alcotest.test_case "different seeds differ" `Quick test_seeds_differ;
        ] );
      ( "conservation",
        [ Alcotest.test_case "bytes acked exactly once" `Quick test_byte_conservation ] );
      ( "paper-claims",
        [
          Alcotest.test_case "clove beats ecmp (asym)" `Slow test_clove_beats_ecmp_under_asymmetry;
          Alcotest.test_case "edge-flowlet beats ecmp (asym)" `Slow
            test_edge_flowlet_between_ecmp_and_clove;
          Alcotest.test_case "low load: schemes close" `Slow test_low_load_schemes_close;
          Alcotest.test_case "incast: mptcp collapses" `Slow test_incast_mptcp_collapses;
          Alcotest.test_case "no stalls at 80% (all schemes)" `Slow test_no_stalls_at_high_load;
          Alcotest.test_case "flowlet gap direction" `Slow test_flowlet_gap_sensitivity_direction;
        ] );
      ( "overhead",
        [ Alcotest.test_case "probe overhead bounded" `Quick test_probe_overhead_bounded ] );
    ]
