(* Property-based tests of core invariants, beyond the per-module suites:
   reassembly is a sorting function, path-table weights stay a probability
   distribution, the receiver's interval buffer loses nothing, flowlet
   decisions change only across gaps. *)

let qc = QCheck_alcotest.to_alcotest

(* Presto reassembly: any arrival order of distinct cell_seqs, with no
   losses, must be delivered in exactly ascending order. *)
let prop_presto_reassembly_sorts =
  QCheck.Test.make ~name:"presto reassembly delivers in order" ~count:100
    QCheck.(pair (int_bound 1000) (int_range 2 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let order = Array.init n (fun i -> i) in
      Rng.shuffle rng order;
      let sched = Scheduler.create () in
      (* generous limits so nothing flushes early *)
      let cfg =
        {
          Clove.Clove_config.default with
          Clove.Clove_config.presto_buffer_limit = 10_000;
        }
      in
      let out = ref [] in
      let rx =
        Clove.Presto_rx.create ~sched ~cfg ~deliver:(fun i ->
            out := i.Packet.seg.Packet.seq :: !out)
      in
      Array.iter
        (fun seq ->
          let inner =
            {
              Packet.src = Addr.of_int 0;
              dst = Addr.of_int 1;
              inner_ecn = Packet.Not_ect;
              seg =
                {
                  Packet.conn_id = 1;
                  subflow = 0;
                  src_port = 1;
                  dst_port = 2;
                  seq;
                  ack = 0;
                  kind = Packet.Data;
                  payload = 1;
                  ece = false;
                };
            }
          in
          Clove.Presto_rx.on_packet rx inner
            ~cell:{ Packet.flow_key = 1; cell_id = 0; cell_seq = seq })
        order;
      List.rev !out = List.init n (fun i -> i))

(* Path-table weights remain a probability distribution under arbitrary
   congestion feedback. *)
let prop_path_table_weights_distribution =
  QCheck.Test.make ~name:"weights stay a distribution under feedback" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 0 5))
    (fun events ->
      let sched = Scheduler.create () in
      let tbl = Clove.Path_table.create ~sched ~cfg:Clove.Clove_config.default in
      let hop n = { Packet.hop_node = n; hop_port = 0 } in
      Clove.Path_table.install tbl
        (List.init 4 (fun i -> (50_000 + i, [ hop (10 + i) ])));
      List.iter
        (fun e -> Clove.Path_table.note_congested tbl ~port:(50_000 + (e mod 6)))
        events;
      let w = Clove.Path_table.weights tbl in
      let total = Array.fold_left ( +. ) 0.0 w in
      abs_float (total -. 1.0) < 1e-6 && Array.for_all (fun x -> x >= 0.0) w)

(* The TCP receiver never loses or duplicates bytes: delivering random
   segments (with overlaps and duplicates) that cover [0, n) must advance
   rcv_next to exactly n. *)
let prop_receiver_interval_union =
  QCheck.Test.make ~name:"receiver buffer assembles the byte stream" ~count:100
    QCheck.(pair (int_bound 1000) (int_range 1 20))
    (fun (seed, nsegs) ->
      let rng = Rng.create seed in
      let seg_len = 100 in
      let total = nsegs * seg_len in
      let order = Array.init nsegs (fun i -> i) in
      Rng.shuffle rng order;
      let sched = Scheduler.create () in
      let r =
        Transport.Tcp.create_receiver ~sched ~cfg:Transport.Tcp_config.default
          ~conn_id:1 ~addr:(Addr.of_int 1) ~peer:(Addr.of_int 0) ~src_port:2
          ~dst_port:1
          ~tx:(fun _ -> ())
          ()
      in
      let deliver seq =
        Transport.Tcp.on_data r
          {
            Packet.src = Addr.of_int 0;
            dst = Addr.of_int 1;
            inner_ecn = Packet.Not_ect;
            seg =
              {
                Packet.conn_id = 1;
                subflow = 0;
                src_port = 1;
                dst_port = 2;
                seq;
                ack = 0;
                kind = Packet.Data;
                payload = seg_len;
                ece = false;
              };
          }
      in
      Array.iter (fun i -> deliver (i * seg_len)) order;
      (* random duplicates must change nothing *)
      for _ = 1 to 5 do
        deliver (Rng.int rng nsegs * seg_len)
      done;
      Transport.Tcp.rcv_next r = total
      && Transport.Tcp.delivered_bytes r = total)

(* Flowlet decisions are stable within a gap and refreshed across gaps. *)
let prop_flowlet_gap_semantics =
  QCheck.Test.make ~name:"flowlet decisions change only across gaps" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 1 30))
    (fun gaps_us ->
      let sched = Scheduler.create () in
      let gap = Sim_time.us 10 in
      let t = Clove.Flowlet.create ~sched ~gap ~dummy:0 in
      let next_decision = ref 0 in
      let pick ~flowlet_id:_ =
        incr next_decision;
        !next_decision
      in
      let ok = ref true in
      let last_decision = ref 0 in
      let first = ref true in
      List.iter
        (fun delta_us ->
          ignore
            (Scheduler.schedule sched ~after:(Sim_time.us delta_us) (fun () ->
                 (* the inter-touch time is exactly [delta_us], so a new
                    flowlet is expected iff it reaches the 10 us gap (or
                    this is the flow's first packet) *)
                 let expect_new = !first || delta_us >= 10 in
                 first := false;
                 let d = Clove.Flowlet.touch t ~key:1 ~pick in
                 if expect_new then begin
                   if d <> !last_decision + 1 then ok := false
                 end
                 else if d <> !last_decision then ok := false;
                 last_decision := d));
          Scheduler.run sched)
        gaps_us;
      !ok)

let () =
  Alcotest.run "properties"
    [
      ( "invariants",
        [
          qc prop_presto_reassembly_sorts;
          qc prop_path_table_weights_distribution;
          qc prop_receiver_interval_union;
          qc prop_flowlet_gap_semantics;
        ] );
    ]
