(* Breadth coverage: smaller behaviours and error paths across all
   libraries that the focused suites do not exercise. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let feq = Alcotest.(check (float 1e-9))

(* ------------------------------- engine ---------------------------- *)

let test_time_minmax_pp () =
  let a = Sim_time.of_ns 5 and b = Sim_time.of_ns 9 in
  check_int "min" 5 (Sim_time.to_ns (Sim_time.min a b));
  check_int "max" 9 (Sim_time.to_ns (Sim_time.max a b));
  check_bool "pp ns" true (Format.asprintf "%a" Sim_time.pp a = "5ns");
  check_bool "pp us" true (Format.asprintf "%a" Sim_time.pp (Sim_time.of_ns 1500) = "1.500us")

let test_rng_bool_balanced () =
  let rng = Rng.create 9 in
  let t = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool rng then incr t
  done;
  check_bool "roughly half" true (!t > 4500 && !t < 5500)

let test_rng_split_named_differs_by_name () =
  let a = Rng.create 7 in
  let x = Rng.split_named a "alpha" and y = Rng.split_named a "beta" in
  check_bool "different streams" true (Rng.int x 1_000_000 <> Rng.int y 1_000_000)

let test_event_queue_clear () =
  let q = Event_queue.create ~dummy:0 () in
  for i = 1 to 5 do
    Event_queue.add q ~time:(Sim_time.of_ns i) i
  done;
  Event_queue.clear q;
  check_bool "empty" true (Event_queue.is_empty q);
  check_bool "peek none" true (Event_queue.peek_time q = None)

let test_scheduler_is_pending () =
  let s = Scheduler.create () in
  let h = Scheduler.schedule s ~after:(Sim_time.us 1) (fun () -> ()) in
  check_bool "pending before" true (Scheduler.is_pending h);
  Scheduler.run s;
  check_bool "not pending after" false (Scheduler.is_pending h)

let test_scheduler_pending_count () =
  let s = Scheduler.create () in
  for i = 1 to 4 do
    ignore (Scheduler.schedule s ~after:(Sim_time.us i) (fun () -> ()))
  done;
  check_int "four pending" 4 (Scheduler.pending_events s)

(* -------------------------------- stats ---------------------------- *)

let test_summary_invalid_percentile () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 1.0;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Summary.percentile: p out of range") (fun () ->
      ignore (Stats.Summary.percentile s 150.0))

let test_cdf_quantiles () =
  let c = Stats.Cdf.of_knots [ (0.0, 0.0); (100.0, 1.0) ] in
  let qs = Stats.Cdf.quantiles c 11 in
  check_int "eleven points" 11 (Array.length qs);
  feq "first" 0.0 (fst qs.(0));
  feq "mid" 50.0 (fst qs.(5));
  feq "last" 100.0 (fst qs.(10))

let test_histogram_empty_fraction () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  feq "fraction of empty" 0.0 (Stats.Histogram.fraction_above h 0.5)

let test_table_float_formatting () =
  let t = Stats.Table.create ~header:[ "x"; "v" ] in
  Stats.Table.add_float_row t ~label:"r" [ 2.0 ];
  check_bool "integers render clean" true
    (let s = Stats.Table.csv t in
     s = "x,v\nr,2\n")

(* -------------------------------- netsim --------------------------- *)

let test_addr_basics () =
  let a = Addr.of_int 3 in
  check_bool "equal" true (Addr.equal a (Addr.of_int 3));
  check_int "compare" 0 (Addr.compare a (Addr.of_int 3));
  check_bool "pp" true (Format.asprintf "%a" Addr.pp a = "h3");
  Alcotest.check_raises "negative" (Invalid_argument "Addr.of_int: negative") (fun () ->
      ignore (Addr.of_int (-1)))

let mk_seg () =
  {
    Packet.conn_id = 1;
    subflow = 0;
    src_port = 10;
    dst_port = 20;
    seq = 0;
    ack = 0;
    kind = Packet.Data;
    payload = 100;
    ece = false;
  }

let test_packet_pp_and_probe () =
  let pkt = Packet.make_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1) ~seg:(mk_seg ()) in
  let s = Format.asprintf "%a" Packet.pp pkt in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "pp mentions data" true (contains s "data");
  check_bool "tenant is not probe" false (Packet.is_probe pkt)

let test_ecmp_select_single () =
  let pkt = Packet.make_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1) ~seg:(mk_seg ()) in
  check_int "n=1 always 0" 0 (Ecmp_hash.select ~seed:5 pkt ~n:1)

let test_dre_invalid_alpha () =
  let sched = Scheduler.create () in
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Dre.create: alpha must be in (0,1)") (fun () ->
      ignore (Dre.create ~alpha:1.5 ~rate_bps:1e9 sched))

let test_queue_disable_marking () =
  let q = Pkt_queue.create ~capacity_pkts:10 ~ecn_threshold_pkts:0 () in
  for _ = 1 to 8 do
    let p = Packet.make_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1) ~seg:(mk_seg ()) in
    p.Packet.ecn <- Packet.Ect;
    ignore (Pkt_queue.enqueue q p)
  done;
  check_int "no marks when disabled" 0 (Pkt_queue.stats q).Pkt_queue.marked;
  check_int "max occupancy tracked" 8 (Pkt_queue.stats q).Pkt_queue.max_occupancy

let test_link_counters () =
  let sched = Scheduler.create () in
  let link = Link.create ~sched ~rate_bps:1e9 ~prop_delay:Sim_time.zero_span ~label:"x" () in
  Link.set_sink link (fun _ -> ());
  let pkt = Packet.make_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1) ~seg:(mk_seg ()) in
  Link.send link pkt;
  Scheduler.run sched;
  check_int "tx packets" 1 (Link.tx_packets link);
  check_int "tx bytes" pkt.Packet.size (Link.tx_bytes link);
  check_bool "label" true (Link.label link = "x");
  check_bool "rate" true (Link.rate_bps link = 1e9);
  check_bool "recently active utilization" true (Link.utilization link > 0.0)

let mk_switch () =
  let sched = Scheduler.create () in
  let sw =
    Switch.create ~sched ~id:7 ~level:Switch.Leaf ~ecmp_seed:1
      ~latency:Sim_time.zero_span ()
  in
  let sink = ref [] in
  let mk_port peer =
    let l = Link.create ~sched ~rate_bps:1e9 ~prop_delay:Sim_time.zero_span () in
    Link.set_sink l (fun p -> sink := (peer, p) :: !sink);
    Switch.add_port sw ~link:l ~peer ~parallel_index:0
  in
  let p0 = mk_port 100 and p1 = mk_port 101 in
  (sched, sw, sink, p0, p1)

let test_switch_hooks_and_drops () =
  let sched, sw, sink, p0, p1 = mk_switch () in
  Switch.set_routes sw (Addr.of_int 9) [| p0; p1 |];
  let rx_seen = ref 0 and tx_seen = ref 0 in
  Switch.set_rx_hook sw (fun _ ~in_port:_ _ -> incr rx_seen);
  Switch.set_tx_hook sw (fun _ ~port:_ _ -> incr tx_seen);
  Switch.set_picker sw (fun _ ~in_port:_ _ ~candidates -> candidates.(1));
  let pkt = Packet.make_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 9) ~seg:(mk_seg ()) in
  Switch.receive sw ~in_port:0 pkt;
  Scheduler.run sched;
  check_int "rx hook" 1 !rx_seen;
  check_int "tx hook" 1 !tx_seen;
  (match !sink with
  | [ (peer, _) ] -> check_int "picker chose port 1" 101 peer
  | _ -> Alcotest.fail "expected one delivery");
  (* unknown destination counts a routing drop *)
  let lost = Packet.make_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 55) ~seg:(mk_seg ()) in
  Switch.receive sw ~in_port:0 lost;
  Scheduler.run sched;
  check_int "routing drop" 1 (Switch.routing_drops sw);
  check_int "rx counted" 2 (Switch.rx_packets sw)

let test_switch_ttl_tenant_dropped_silently () =
  let sched, sw, sink, p0, _ = mk_switch () in
  Switch.set_routes sw (Addr.of_int 9) [| p0 |];
  let pkt = Packet.make_tenant ~src:(Addr.of_int 0) ~dst:(Addr.of_int 9) ~seg:(mk_seg ()) in
  pkt.Packet.ttl <- 1;
  Switch.receive sw ~in_port:0 pkt;
  Scheduler.run sched;
  check_int "not forwarded" 0 (List.length !sink);
  check_int "ttl drop counted" 1 (Switch.ttl_drops sw)

let test_topology_edge_ops () =
  let topo = Topology.create () in
  let a = Topology.add_switch topo Switch.Leaf in
  let b = Topology.add_switch topo Switch.Spine in
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.connect: self-loop")
    (fun () ->
      ignore (Topology.connect topo a a ~rate_bps:1e9 ~delay:Sim_time.zero_span ()));
  let e = Topology.connect topo a b ~rate_bps:1e9 ~delay:Sim_time.zero_span () in
  check_bool "find either orientation" true
    (Topology.find_edge topo ~a:b ~b:a ~bundle_index:0 = Some e);
  Topology.fail_edge topo e;
  check_int "no live neighbors" 0 (List.length (Topology.live_neighbors topo a));
  Topology.restore_edge topo e;
  check_int "restored" 1 (List.length (Topology.live_neighbors topo a))

let test_routing_distances () =
  let ls =
    Topology.leaf_spine ~leaves:2 ~spines:1 ~hosts_per_leaf:1 ~parallel:1
      ~host_rate_bps:1e9 ~fabric_rate_bps:1e9 ~host_delay:Sim_time.zero_span
      ~fabric_delay:Sim_time.zero_span
  in
  let dst = ls.Topology.host_ids.(1).(0) in
  let dist = Routing.distances ls.Topology.topo ~dst in
  check_int "self distance" 0 (Hashtbl.find dist dst);
  (* other host: host -> leaf -> spine -> leaf -> host = 4 hops *)
  check_int "cross distance" 4 (Hashtbl.find dist ls.Topology.host_ids.(0).(0))

(* ------------------------------- transport ------------------------- *)

let test_tcp_invalid_send () =
  let sched = Scheduler.create () in
  let s =
    Transport.Tcp.create_sender ~sched ~cfg:Transport.Tcp_config.default ~conn_id:1
      ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1) ~src_port:1 ~dst_port:2
      ~tx:(fun _ -> ())
      ()
  in
  Alcotest.check_raises "zero bytes" (Invalid_argument "Tcp.send: bytes must be positive")
    (fun () -> Transport.Tcp.send s ~bytes:0 ~on_complete:(fun () -> ()))

let test_tcp_cwnd_persists_across_jobs () =
  (* persistent connections do not restart slow start per job *)
  let sched = Scheduler.create () in
  let receiver_ref = ref None in
  let sender =
    Transport.Tcp.create_sender ~sched ~cfg:Transport.Tcp_config.default ~conn_id:1
      ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1) ~src_port:1 ~dst_port:2
      ~tx:(fun pkt ->
        match pkt.Packet.payload with
        | Packet.Tenant inner ->
          ignore
            (Scheduler.schedule sched ~after:(Sim_time.us 10) (fun () ->
                 match !receiver_ref with
                 | Some r -> Transport.Tcp.on_data r inner
                 | None -> ()))
        | _ -> ())
      ()
  in
  let receiver =
    Transport.Tcp.create_receiver ~sched ~cfg:Transport.Tcp_config.default ~conn_id:1
      ~addr:(Addr.of_int 1) ~peer:(Addr.of_int 0) ~src_port:2 ~dst_port:1
      ~tx:(fun pkt ->
        match pkt.Packet.payload with
        | Packet.Tenant inner ->
          ignore
            (Scheduler.schedule sched ~after:(Sim_time.us 10) (fun () ->
                 Transport.Tcp.on_ack sender inner.Packet.seg))
        | _ -> ())
      ()
  in
  receiver_ref := Some receiver;
  Transport.Tcp.send sender ~bytes:200_000 ~on_complete:(fun () -> ());
  Scheduler.run sched;
  let w_after_first = Transport.Tcp.cwnd_pkts sender in
  check_bool "grew past initial" true (w_after_first > 10.0);
  Transport.Tcp.send sender ~bytes:200_000 ~on_complete:(fun () -> ());
  Scheduler.run sched;
  check_bool "no slow-start restart" true (Transport.Tcp.cwnd_pkts sender >= w_after_first)

let test_mptcp_reinjection_recovers () =
  (* blackhole one subflow entirely: reinjection must still complete the
     job via the healthy subflows *)
  let sched = Scheduler.create () in
  let src = Addr.of_int 0 and dst = Addr.of_int 1 in
  let src_stack = Transport.Stack.create () and dst_stack = Transport.Stack.create () in
  let tx_src pkt =
    match pkt.Packet.payload with
    | Packet.Tenant inner ->
      if inner.Packet.seg.Packet.subflow <> 3 then
        ignore
          (Scheduler.schedule sched ~after:(Sim_time.us 50) (fun () ->
               Transport.Stack.deliver dst_stack inner))
    | _ -> ()
  in
  let tx_dst pkt =
    match pkt.Packet.payload with
    | Packet.Tenant inner ->
      ignore
        (Scheduler.schedule sched ~after:(Sim_time.us 50) (fun () ->
             Transport.Stack.deliver src_stack inner))
    | _ -> ()
  in
  let conn =
    Transport.Mptcp.create ~sched ~cfg:Transport.Tcp_config.default ~conn_id:2
      ~subflows:4 ~src ~dst ~base_port:3000 ~dst_port:80 ~tx_src ~tx_dst ~src_stack
      ~dst_stack ()
  in
  let finished = ref false in
  Transport.Mptcp.send conn ~bytes:500_000 ~on_complete:(fun () -> finished := true);
  Scheduler.run ~until:(Sim_time.of_ns 5_000_000_000) sched;
  check_bool "completed despite dead subflow" true !finished;
  check_bool "reinjection used" true (Transport.Mptcp.reinjections conn > 0);
  Transport.Stack.stop_all src_stack

(* --------------------------------- clove --------------------------- *)

let test_wrr_normalize () =
  let w = Clove.Wrr.create ~weights:[| 2.0; 6.0 |] in
  Clove.Wrr.normalize w;
  feq "sums to one" 1.0 (Array.fold_left ( +. ) 0.0 (Clove.Wrr.weights w));
  feq "ratio preserved" 0.25 (Clove.Wrr.weight w 0)

let test_path_table_age_weights () =
  let sched = Scheduler.create () in
  let cfg = { Clove.Clove_config.default with Clove.Clove_config.weight_aging = 0.5 } in
  let tbl = Clove.Path_table.create ~sched ~cfg in
  let hop n = { Packet.hop_node = n; hop_port = 0 } in
  Clove.Path_table.install tbl [ (1, [ hop 2 ]); (2, [ hop 3 ]) ];
  Clove.Path_table.note_congested tbl ~port:1;
  let before = (Clove.Path_table.weights tbl).(0) in
  Clove.Path_table.age_weights tbl;
  let after = (Clove.Path_table.weights tbl).(0) in
  check_bool "aged toward uniform" true (after > before && after < 0.5)

let test_path_table_pick_random_in_ports () =
  let sched = Scheduler.create () in
  let tbl = Clove.Path_table.create ~sched ~cfg:Clove.Clove_config.default in
  let hop n = { Packet.hop_node = n; hop_port = 0 } in
  Clove.Path_table.install tbl [ (11, [ hop 2 ]); (22, [ hop 3 ]) ];
  let rng = Rng.create 4 in
  for _ = 1 to 50 do
    let p = Clove.Path_table.pick_random tbl rng in
    check_bool "known port" true (p = 11 || p = 22)
  done

let test_presto_rx_buffer_limit_flush () =
  let sched = Scheduler.create () in
  let cfg = { Clove.Clove_config.default with Clove.Clove_config.presto_buffer_limit = 3 } in
  let out = ref 0 in
  let rx = Clove.Presto_rx.create ~sched ~cfg ~deliver:(fun _ -> incr out) in
  let inner seq =
    {
      Packet.src = Addr.of_int 0;
      dst = Addr.of_int 1;
      inner_ecn = Packet.Not_ect;
      seg = { (mk_seg ()) with Packet.seq };
    }
  in
  (* fill the buffer past the limit without ever delivering cell_seq 0 *)
  for i = 1 to 4 do
    Clove.Presto_rx.on_packet rx (inner i)
      ~cell:{ Packet.flow_key = 1; cell_id = 0; cell_seq = i }
  done;
  check_bool "flushed on overflow" true (!out >= 4);
  check_int "flush counted" 1 (Clove.Presto_rx.timeout_flushes rx)

let test_traceroute_counters () =
  let params = { Experiments.Scenario.default_params with seed = 2 } in
  let scn = Experiments.Scenario.build ~scheme:Experiments.Scenario.S_clove_ecn params in
  let client = (Experiments.Scenario.clients scn).(0) in
  let server = (Experiments.Scenario.servers scn).(0) in
  Clove.Vswitch.add_destination
    (Experiments.Scenario.vswitch scn client)
    (Host.addr server);
  Scheduler.run
    ~until:(Sim_time.of_ns (Sim_time.span_ns (Sim_time.ms 15)))
    (Experiments.Scenario.sched scn);
  let stats = Clove.Vswitch.stats (Experiments.Scenario.vswitch scn server) in
  check_bool "probes answered at destination" true
    (stats.Clove.Vswitch.probes_answered > 0);
  Experiments.Scenario.quiesce scn

(* ------------------------------ experiments ------------------------ *)

let test_capture_ratio () =
  feq "80%" 0.8 (Experiments.Figures.capture_ratio ~ecmp:10.0 ~clove:2.8 ~conga:1.0);
  check_bool "nan when no gain" true
    (Float.is_nan (Experiments.Figures.capture_ratio ~ecmp:1.0 ~clove:1.0 ~conga:2.0))

let test_scenario_k_paths_override () =
  let params =
    { Experiments.Scenario.default_params with k_paths_override = Some 2; seed = 4 }
  in
  let scn = Experiments.Scenario.build ~scheme:Experiments.Scenario.S_clove_ecn params in
  let client = (Experiments.Scenario.clients scn).(0) in
  let server = (Experiments.Scenario.servers scn).(0) in
  Clove.Vswitch.add_destination
    (Experiments.Scenario.vswitch scn client)
    (Host.addr server);
  Scheduler.run
    ~until:(Sim_time.of_ns (Sim_time.span_ns (Sim_time.ms 15)))
    (Experiments.Scenario.sched scn);
  (match
     Clove.Vswitch.path_table (Experiments.Scenario.vswitch scn client) (Host.addr server)
   with
  | Some tbl -> check_int "capped at 2 paths" 2 (Clove.Path_table.port_count tbl)
  | None -> Alcotest.fail "no table");
  Experiments.Scenario.quiesce scn

let test_scheme_names_roundtrip () =
  List.iter
    (fun s ->
      let name = Experiments.Scenario.scheme_name s in
      match Experiments.Scenario.scheme_of_string name with
      | Some s' -> check_bool name true (s = s')
      | None -> Alcotest.fail ("no roundtrip for " ^ name))
    Experiments.Scenario.
      [
        S_ecmp;
        S_edge_flowlet;
        S_clove_ecn;
        S_clove_int;
        S_clove_latency;
        S_presto;
        S_mptcp;
        S_conga;
        S_letflow;
      ]

let () =
  Alcotest.run "coverage"
    [
      ( "engine",
        [
          Alcotest.test_case "time min/max/pp" `Quick test_time_minmax_pp;
          Alcotest.test_case "rng bool" `Quick test_rng_bool_balanced;
          Alcotest.test_case "rng named splits" `Quick test_rng_split_named_differs_by_name;
          Alcotest.test_case "event queue clear" `Quick test_event_queue_clear;
          Alcotest.test_case "scheduler pending" `Quick test_scheduler_is_pending;
          Alcotest.test_case "pending count" `Quick test_scheduler_pending_count;
        ] );
      ( "stats",
        [
          Alcotest.test_case "invalid percentile" `Quick test_summary_invalid_percentile;
          Alcotest.test_case "cdf quantiles" `Quick test_cdf_quantiles;
          Alcotest.test_case "empty histogram" `Quick test_histogram_empty_fraction;
          Alcotest.test_case "table formatting" `Quick test_table_float_formatting;
        ] );
      ( "netsim",
        [
          Alcotest.test_case "addr" `Quick test_addr_basics;
          Alcotest.test_case "packet pp" `Quick test_packet_pp_and_probe;
          Alcotest.test_case "select n=1" `Quick test_ecmp_select_single;
          Alcotest.test_case "dre invalid alpha" `Quick test_dre_invalid_alpha;
          Alcotest.test_case "queue marking disabled" `Quick test_queue_disable_marking;
          Alcotest.test_case "link counters" `Quick test_link_counters;
          Alcotest.test_case "switch hooks and drops" `Quick test_switch_hooks_and_drops;
          Alcotest.test_case "ttl drop silent for data" `Quick
            test_switch_ttl_tenant_dropped_silently;
          Alcotest.test_case "topology edge ops" `Quick test_topology_edge_ops;
          Alcotest.test_case "routing distances" `Quick test_routing_distances;
        ] );
      ( "transport",
        [
          Alcotest.test_case "invalid send" `Quick test_tcp_invalid_send;
          Alcotest.test_case "cwnd persists across jobs" `Quick
            test_tcp_cwnd_persists_across_jobs;
          Alcotest.test_case "mptcp reinjection recovers" `Quick
            test_mptcp_reinjection_recovers;
        ] );
      ( "clove",
        [
          Alcotest.test_case "wrr normalize" `Quick test_wrr_normalize;
          Alcotest.test_case "path table aging" `Quick test_path_table_age_weights;
          Alcotest.test_case "pick random in ports" `Quick test_path_table_pick_random_in_ports;
          Alcotest.test_case "presto buffer limit" `Quick test_presto_rx_buffer_limit_flush;
          Alcotest.test_case "traceroute counters" `Quick test_traceroute_counters;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "capture ratio" `Quick test_capture_ratio;
          Alcotest.test_case "k paths override" `Quick test_scenario_k_paths_override;
          Alcotest.test_case "scheme names roundtrip" `Quick test_scheme_names_roundtrip;
        ] );
    ]
