(* Tests for the in-fabric load balancers: CONGA and the 3-tier CAFT
   baseline. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build ?(asymmetric = false) () =
  let params = { Experiments.Scenario.default_params with asymmetric; seed = 9 } in
  Experiments.Scenario.build ~scheme:Experiments.Scenario.S_conga params

let leaf_ids scn =
  Array.to_list (Fabric.switches (Experiments.Scenario.fabric scn))
  |> List.filter (fun sw -> Switch.level sw = Switch.Leaf)
  |> List.map Switch.id

let test_conga_delivers () =
  let scn = build () in
  let sched = Experiments.Scenario.sched scn in
  let client = (Experiments.Scenario.clients scn).(0) in
  let server = (Experiments.Scenario.servers scn).(0) in
  let submit = Experiments.Scenario.connect scn ~src:client ~dst:server in
  let finished = ref false in
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.ms 1) (fun () ->
         submit ~bytes:500_000 ~on_complete:(fun () -> finished := true)));
  Scheduler.run ~until:(Sim_time.of_ns 100_000_000) sched;
  check_bool "transfer completed" true !finished;
  Experiments.Scenario.quiesce scn

let test_conga_metadata_flows () =
  (* after traffic in both directions, the source leaf must have learned
     CongToLeaf metrics through piggybacked feedback *)
  let scn = build () in
  let sched = Experiments.Scenario.sched scn in
  let clients = Experiments.Scenario.clients scn in
  let server = (Experiments.Scenario.servers scn).(0) in
  let submits =
    Array.map (fun c -> Experiments.Scenario.connect scn ~src:c ~dst:server) clients
  in
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.ms 1) (fun () ->
         Array.iter (fun s -> s ~bytes:2_000_000 ~on_complete:(fun () -> ())) submits));
  (* read the tables while traffic is still flowing: CONGA ages metrics
     out after 10 ms of silence *)
  Scheduler.run ~until:(Sim_time.of_ns 9_000_000) sched;
  let conga =
    match Experiments.Scenario.conga scn with
    | Some c -> c
    | None -> Alcotest.fail "conga not installed"
  in
  check_bool "made decisions" true (Fabric_lb.Conga.decisions conga > 0);
  check_bool "created flowlets" true (Fabric_lb.Conga.flowlets_started conga > 0);
  (match leaf_ids scn with
  | [ l1; l2 ] ->
    (* the client leaf learned utilization toward the server leaf on at
       least one uplink *)
    let metrics = Fabric_lb.Conga.cong_to_leaf conga ~leaf:l1 ~dst_leaf:l2 in
    check_int "4 uplinks" 4 (Array.length metrics);
    check_bool "some non-zero metric" true (Array.exists (fun m -> m > 0.0) metrics)
  | _ -> Alcotest.fail "expected two leaves");
  Experiments.Scenario.quiesce scn

let test_conga_avoids_degraded_spine () =
  (* asymmetric fabric: CONGA must shift load away from the degraded
     spine.  Compare bytes carried by the two spines. *)
  let scn = build ~asymmetric:true () in
  let sched = Experiments.Scenario.sched scn in
  let clients = Experiments.Scenario.clients scn in
  let servers = Experiments.Scenario.servers scn in
  Array.iteri
    (fun i c ->
      let submit =
        Experiments.Scenario.connect scn ~src:c ~dst:servers.(i mod Array.length servers)
      in
      ignore
        (Scheduler.schedule sched ~after:(Sim_time.ms 1) (fun () ->
             submit ~bytes:4_000_000 ~on_complete:(fun () -> ()))))
    clients;
  Scheduler.run ~until:(Sim_time.of_ns 60_000_000) sched;
  let spines =
    Array.to_list (Fabric.switches (Experiments.Scenario.fabric scn))
    |> List.filter (fun sw -> Switch.level sw = Switch.Spine)
  in
  (match spines with
  | [ s1; s2 ] ->
    (* s2 is degraded (half its capacity toward L2): it must carry less *)
    check_bool "healthy spine carries more" true
      (Switch.rx_packets s1 > Switch.rx_packets s2)
  | _ -> Alcotest.fail "expected two spines");
  Experiments.Scenario.quiesce scn

let test_conga_asymmetric_beats_ecmp () =
  (* the paper's core claim about utilization-aware fabric LB: under
     asymmetry CONGA clearly beats ECMP on average FCT *)
  let run scheme =
    let params =
      {
        Experiments.Scenario.default_params with
        Experiments.Scenario.asymmetric = true;
        seed = 2;
      }
    in
    Workload.Fct_stats.avg
      (Experiments.Sweep.websearch_run ~scheme ~params ~load:0.6 ~jobs_per_conn:60)
  in
  let ecmp = run Experiments.Scenario.S_ecmp in
  let conga = run Experiments.Scenario.S_conga in
  check_bool
    (Printf.sprintf "conga (%.4fs) beats ecmp (%.4fs)" conga ecmp)
    true (conga < ecmp)

(* ------------------------------- CAFT ------------------------------ *)

let build_caft () =
  let params =
    {
      Experiments.Scenario.default_params with
      Experiments.Scenario.pods = 2;
      hosts_per_leaf = 2;
      seed = 9;
    }
  in
  Experiments.Scenario.build ~scheme:Experiments.Scenario.S_caft params

let test_caft_delivers_across_core () =
  (* an inter-pod transfer completes, and the hop-by-hop pickers on
     leaves, spines and cores all made flowlet decisions along the way *)
  let scn = build_caft () in
  let sched = Experiments.Scenario.sched scn in
  let client = (Experiments.Scenario.clients scn).(0) in
  let server = (Experiments.Scenario.servers scn).(0) in
  let submit = Experiments.Scenario.connect scn ~src:client ~dst:server in
  let finished = ref false in
  ignore
    (Scheduler.schedule sched ~after:(Sim_time.ms 1) (fun () ->
         submit ~bytes:500_000 ~on_complete:(fun () -> finished := true)));
  Scheduler.run ~until:(Sim_time.of_ns 100_000_000) sched;
  check_bool "transfer completed" true !finished;
  let caft =
    match Experiments.Scenario.caft scn with
    | Some c -> c
    | None -> Alcotest.fail "caft not installed"
  in
  check_bool "made decisions" true (Fabric_lb.Caft.decisions caft > 0);
  check_bool "created flowlets" true
    (Fabric_lb.Caft.flowlets_started caft > 0);
  check_int "reweighted once at install" 1 (Fabric_lb.Caft.reweights caft);
  (* 3-tier scenario handle present, with the flattened 2-tier view *)
  check_bool "clos3 exposed" true
    (Option.is_some (Experiments.Scenario.clos scn));
  Experiments.Scenario.quiesce scn

let test_caft_spreads_over_both_cores () =
  (* with two core uplinks per spine, sustained inter-pod traffic must
     use more than one core (a single-path scheme would pin to one) *)
  let scn = build_caft () in
  let sched = Experiments.Scenario.sched scn in
  let clients = Experiments.Scenario.clients scn in
  let servers = Experiments.Scenario.servers scn in
  Array.iteri
    (fun i c ->
      let submit =
        Experiments.Scenario.connect scn ~src:c
          ~dst:servers.(i mod Array.length servers)
      in
      ignore
        (Scheduler.schedule sched ~after:(Sim_time.ms 1) (fun () ->
             submit ~bytes:4_000_000 ~on_complete:(fun () -> ()))))
    clients;
  Scheduler.run ~until:(Sim_time.of_ns 60_000_000) sched;
  let cores =
    Array.to_list (Fabric.switches (Experiments.Scenario.fabric scn))
    |> List.filter (fun sw -> Switch.level sw = Switch.Core_sw)
    |> List.filter (fun sw -> Switch.rx_packets sw > 0)
  in
  check_bool
    (Printf.sprintf "%d cores carried traffic" (List.length cores))
    true
    (List.length cores >= 2);
  Experiments.Scenario.quiesce scn

let () =
  Alcotest.run "fabric_lb"
    [
      ( "conga",
        [
          Alcotest.test_case "delivers" `Quick test_conga_delivers;
          Alcotest.test_case "metadata flows" `Quick test_conga_metadata_flows;
          Alcotest.test_case "avoids degraded spine" `Slow test_conga_avoids_degraded_spine;
          Alcotest.test_case "beats ecmp under asymmetry" `Slow test_conga_asymmetric_beats_ecmp;
        ] );
      ( "caft",
        [
          Alcotest.test_case "delivers across the core" `Quick
            test_caft_delivers_across_core;
          Alcotest.test_case "spreads over both cores" `Quick
            test_caft_spreads_over_both_cores;
        ] );
    ]
