(* Seeded clean fixture: the same shape as racy_chain, but every
   mutation reachable from the parallel entry point is guarded by one
   of the three recognized disciplines — Atomic, a mutex taken in the
   mutating function, or Domain.DLS.  clove-race must report nothing. *)

let total = Atomic.make 0

let table : (int, int) Hashtbl.t = Hashtbl.create 16
let table_lock = Mutex.create ()

let scratch = Domain.DLS.new_key (fun () -> Buffer.create 64)

let count _x = Atomic.incr total

let put x =
  Mutex.lock table_lock;
  Hashtbl.replace table x (x * 2);
  Mutex.unlock table_lock

let local_note x =
  let buf = Domain.DLS.get scratch in
  Buffer.add_string buf (string_of_int x)

let work x =
  count x;
  put x;
  local_note x;
  x

let run_all xs = Engine.Domain_pool.run work xs
