(* Seeded true positive: a module-level Hashtbl mutated two calls below
   a domain-parallel entry point, with no atomic/lock/DLS discipline.
   clove-race must flag [stats] with the witness chain
   run_batch -> record -> bump -> Hashtbl.replace. *)

let stats : (int, int) Hashtbl.t = Hashtbl.create 16

let bump key =
  let n = match Hashtbl.find_opt stats key with Some n -> n | None -> 0 in
  Hashtbl.replace stats key (n + 1)

let record x = bump (x mod 8)

let run_batch xs = Engine.Domain_pool.run record xs

(* Second seeded positive, exercising a mutator added by the stdlib
   audit: [Array.fast_sort] mutates its *second* argument (target-arg
   index 1), a module-level array reordered from a parallel task. *)

let order = Array.make 8 0

let resort () = Array.fast_sort compare order

let reorder x = if x land 1 = 0 then resort ()

let run_sorted xs = Engine.Domain_pool.run reorder xs
