(* Seeded hot-path allocator: the dispatch handler registered with
   [Scheduler.register_kind] reaches, two calls deep, a helper that
   conses a fresh closure per event.  clove-alloc must flag the
   closure literal and the list cons in [push_thunk] with a witness
   chain from the registration root:
     install.<kind@..> -> on_event -> push_thunk -> closure/cons. *)

type sink = { mutable pending : (unit -> unit) list; mutable fired : int }

let sink = { pending = []; fired = 0 }

let push_thunk v =
  sink.pending <- (fun () -> sink.fired <- sink.fired + v) :: sink.pending

let on_event arg = push_thunk (arg + 1)

let install sched =
  ignore (Engine.Scheduler.register_kind sched (fun arg -> on_event arg))
