(* Non-allocating twin of alloc_hot: the handler is a preallocated
   named function that only writes preexisting mutable fields, so
   nothing reachable from the dispatch root allocates and clove-alloc
   must report no active finding in this file. *)

type handle = { mutable last : int; mutable fires : int }

let h = { last = 0; fires = 0 }

let on_event arg =
  h.last <- arg;
  h.fires <- h.fires + 1

let install sched = ignore (Engine.Scheduler.register_kind sched on_event)
