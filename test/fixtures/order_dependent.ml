(* A deliberately order-dependent "load balancer" used as an analyzer
   fixture: each definition below violates one clove-sema determinism or
   unit-safety rule.  The [fixtures] directory has no dune stanza, so
   this file is never compiled, and the clove-sema driver skips it
   unless pointed at it explicitly:

     clove-sema test/fixtures    # must exit 1, naming every rule *)

let weights : (int, float) Hashtbl.t = Hashtbl.create 16
let log = Buffer.create 256

(* sema-hashtbl-order: effectful closure visits in bucket order *)
let dump_weights () =
  Hashtbl.iter
    (fun port w -> Buffer.add_string log (Printf.sprintf "%d:%f\n" port w))
    weights

(* sema-raw-random: bypasses the seeded Engine.Rng streams *)
let pick_port ports = List.nth ports (Random.int (List.length ports))

(* sema-wall-clock: wall time leaks into the simulation *)
let stamp () = Unix.gettimeofday ()

(* sema-adhoc-seed: constant seed decoupled from the experiment seed *)
let local_rng = Rng.create 42

(* sema-wildcard-variant: silent fall-through over protocol payloads *)
let is_probe pkt = match pkt.Packet.payload with Packet.Probe _ -> true | _ -> false

(* sema-time-boundary: raw nanoseconds outside the whitelist *)
let gap_ns = Sim_time.span_ns (Sim_time.us 500)

(* sema-unit-mix: bytes added to nanoseconds *)
let nonsense flow_bytes = flow_bytes + gap_ns
